// VmacBackend: one pluggable AMS datapath behind the network-level engine.
//
// The paper's Section-4 extension methods (multiplication partitioning,
// delta-sigma error recycling, ADC reference scaling) were implemented as
// standalone dot-product simulators measured only by microbenches, while
// the network-level pipeline (VmacConv2d -> ENOB sweeps -> Fig. 8 map)
// was hard-wired to the plain VmacCell. This interface closes that gap:
// every datapath computes one VMAC-sized chunk of a dot product through
// the same seam and reports its conversion costs, so the conv engine, the
// experiment sweeps, and the energy accountant are all backend-generic.
//
// Contract:
//  - accumulate() consumes one chunk (<= Nmult operand pairs) and returns
//    the digital term to add to the output accumulator. Stateful backends
//    (delta-sigma) carry residual state between successive chunks of the
//    SAME output accumulator — callers must stream one output's chunks
//    contiguously (output stationarity, paper Sec. 4).
//  - finish_output() flushes any carried state at the end of one output's
//    chunk stream and returns the final digital term (0 for stateless
//    backends, the high-resolution final conversion for delta-sigma).
//  - clone() yields a fresh-state copy; parallel engines clone one
//    backend per worker so per-output state never crosses threads.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ams/delta_sigma.hpp"
#include "ams/device_profile.hpp"
#include "ams/partitioned.hpp"
#include "ams/vmac_cell.hpp"

namespace ams::vmac {

/// The six hardware datapaths the library can evaluate at network level.
enum class BackendKind {
    kBitExact,         ///< plain VmacCell: operand codecs + one ADC per chunk
    kPerVmacNoise,     ///< exact partial sums + uniform(-LSB/2, LSB/2) per chunk
    kPartitioned,      ///< Sec. 4 method 1: NW x NX low-res partial conversions
    kDeltaSigma,       ///< Sec. 4 method 2: error recycling, high-res final conversion
    kReferenceScaled,  ///< Sec. 4 method 3: ADC reference shrunk below full scale
    kBlockFp,          ///< adaptive block floating-point operand encoding
};

/// Stable lower_snake_case label ("bit_exact", "delta_sigma", ...) used in
/// CSV series, cache keys, and CLI flags.
[[nodiscard]] const char* backend_kind_name(BackendKind kind);

/// Inverse of backend_kind_name; throws std::invalid_argument listing the
/// valid names on an unknown label.
[[nodiscard]] BackendKind parse_backend_kind(std::string_view name);

/// All kinds, in declaration order (bench sweeps iterate this).
[[nodiscard]] const std::vector<BackendKind>& all_backend_kinds();

/// One class of ADC conversions a backend performs, for energy pricing.
/// A backend's total conversion energy for an output accumulator computed
/// as `chunks` VMAC-sized chunks is
///   sum_i E_ADC(enob_i) * (per_chunk_i * chunks + per_output_i).
struct ConversionCost {
    double enob = 0.0;        ///< resolution of this conversion class
    double per_chunk = 0.0;   ///< conversions per VMAC-sized chunk
    double per_output = 0.0;  ///< conversions per output accumulator
};
using ConversionProfile = std::vector<ConversionCost>;

/// Abstract AMS datapath: computes chunk contributions and reports cost.
class VmacBackend {
public:
    virtual ~VmacBackend() = default;

    /// Digital contribution of one chunk (see class contract above).
    /// Throws std::invalid_argument on size mismatch or > Nmult pairs.
    virtual double accumulate(std::span<const double> weights,
                              std::span<const double> activations, Rng& rng) = 0;

    /// End of one output accumulator's chunk stream; returns the final
    /// digital term and resets per-output state. Stateless default: 0.
    virtual double finish_output(Rng& rng) {
        (void)rng;
        return 0.0;
    }

    [[nodiscard]] virtual BackendKind kind() const = 0;
    [[nodiscard]] std::string name() const { return backend_kind_name(kind()); }

    /// ADC conversions issued per VMAC-sized chunk (the paper's
    /// speed/energy cost axis: NW*NX for partitioning, 1 otherwise).
    [[nodiscard]] virtual std::size_t conversions_per_vmac() const = 0;

    /// Per-conversion resolutions and counts for energy accounting.
    [[nodiscard]] virtual ConversionProfile conversion_profile() const = 0;

    /// Equivalent monolithic per-conversion ENOB of this datapath for an
    /// output computed as `chunks_per_output` chunks: the resolution at
    /// which the plain datapath would inject the same error variance
    /// (Eq. 2 equivalence). Data-dependent effects (reference-scaling
    /// clipping) are excluded — see each implementation's note.
    [[nodiscard]] virtual double effective_enob(std::size_t chunks_per_output) const = 0;

    /// Whether the datapath supports gradient propagation. All current
    /// backends are evaluation-only (paper Sec. 4: per-VMAC modeling "can
    /// be performed for evaluation only").
    [[nodiscard]] virtual bool trainable() const { return false; }

    /// Fresh copy with reset per-output state. Contract: the clone owns
    /// ALL of its mutable state — per-output residuals, scratch buffers,
    /// lazily materialized device realizations, and any RNG state. Two
    /// clones fed identical chunk streams (with independently seeded
    /// Rngs) must produce bit-identical outputs, and activity on one
    /// clone must never perturb another: parallel engines clone one
    /// backend per worker and rely on this isolation for thread-count
    /// invariance. make_backend() asserts the property in debug builds
    /// via verify_clone_isolation().
    [[nodiscard]] virtual std::unique_ptr<VmacBackend> clone() const = 0;

    [[nodiscard]] virtual const VmacConfig& config() const = 0;
};

/// Everything that parameterizes backend construction beyond the shared
/// (VmacConfig, AnalogOptions) pair.
struct BackendOptions {
    BackendKind kind = BackendKind::kBitExact;

    /// kPartitioned: chunk counts and partial-ADC resolutions. The
    /// `analog` member inside is overwritten with the outer AnalogOptions.
    PartitionOptions partition{};

    /// kDeltaSigma: resolution of the final conversion; <= 0 selects
    /// config.enob + 4 (a comfortably finer converter, paper Sec. 4:
    /// "the final conversion is performed at a higher resolution").
    double delta_sigma_final_enob = 0.0;

    /// kReferenceScaled: ADC reference relative to the natural full scale.
    double reference_scale = 0.5;

    /// kBlockFp: mantissa magnitude bits per operand; 0 derives them from
    /// the config's operand widths (bits_w - 1 / bits_x - 1, the same
    /// magnitude budget as the cell's sign-magnitude codecs).
    std::size_t block_fp_mantissa_bits = 0;

    /// Per-chip device variability (static offsets, drift, IR drop)
    /// layered over the selected datapath by make_backend via the
    /// DeviceVariation decorator. The default (inactive) profile leaves
    /// the datapath untouched — and untagged, so historical cache keys
    /// and CSV labels are preserved.
    DeviceProfile variation{};

    /// Compact parameter tag ("partitioned_nw2_nx2_p8", "delta_sigma_f12",
    /// ...) for cache keys and CSV labels; an active variation profile
    /// appends its own tag ("..._chip7_off0.02_t64nu0.2").
    [[nodiscard]] std::string str() const;
};

/// Builds the requested backend. Throws std::invalid_argument on invalid
/// configuration (bad config/analog, non-divisible partition chunks, ...).
[[nodiscard]] std::unique_ptr<VmacBackend> make_backend(const VmacConfig& config,
                                                        const AnalogOptions& analog,
                                                        const BackendOptions& options);

/// Convenience: plain bit-exact backend (the pre-refactor datapath).
[[nodiscard]] std::unique_ptr<VmacBackend> make_backend(const VmacConfig& config,
                                                        const AnalogOptions& analog = {});

/// Checks the clone() isolation contract on a backend: clones twice,
/// drives chunks through one clone, and verifies a second clone still
/// reproduces a fresh clone's fixed-seed output bit-for-bit (shared
/// mutable RNG or residual state would diverge it). Pure apart from
/// temporarily forcing the metrics level off so probe chunks never touch
/// the conversion ledger — callers running concurrent *instrumented*
/// work should not interleave with it (debug-build factory asserts and
/// tests, in practice). Returns true iff the contract holds.
[[nodiscard]] bool verify_clone_isolation(const VmacBackend& backend);

}  // namespace ams::vmac
