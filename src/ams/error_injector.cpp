#include "ams/error_injector.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/trace.hpp"

namespace ams::vmac {

namespace {

// RNG tile width, in output elements. Fixed — never derived from the
// thread count — so the mapping from element to noise stream depends only
// on tensor position and the injected sequence is reproducible at any
// AMSNET_THREADS. One switch of tile width is a (seed-level) change of
// the exact noise realization, recorded in EXPERIMENTS.md.
constexpr std::size_t kRngTile = 2048;

}  // namespace

ErrorInjector::ErrorInjector(VmacConfig config, std::size_t n_tot, Rng rng, InjectionMode mode,
                             const DeviceProfile& device)
    : config_(config),
      n_tot_(n_tot),
      streams_(runtime::RngStream::from(rng)),
      mode_(mode),
      device_(device) {
    config_.validate();
    device_.validate();
    if (n_tot == 0) throw std::invalid_argument("ErrorInjector: n_tot must be > 0");
}

void ErrorInjector::set_config(const VmacConfig& config) {
    config.validate();
    config_ = config;
}

double ErrorInjector::error_stddev() const {
    return total_error_stddev(config_, n_tot_);
}

Tensor ErrorInjector::forward(const Tensor& input) {
    if (!enabled_) return input;
    Tensor out = input;
    inject(out);
    return out;
}

Tensor ErrorInjector::forward(const Tensor& input, runtime::EvalContext& ctx) {
    // No training/eval distinction: noise is forward-only, backward is the
    // identity. The arena copy replaces the legacy deep copy; a disabled
    // injector copies without consuming a noise epoch, exactly like the
    // legacy pass-through.
    Tensor out = nn::arena_output(ctx, input.shape());
    std::memcpy(out.data(), input.data(), input.size() * sizeof(float));
    if (enabled_) inject(out);
    return out;
}

void ErrorInjector::inject(Tensor& out) {
    const Shape& s = out.shape();
    const std::size_t batch = s.rank() > 0 ? s.dim(0) : 1;
    const std::size_t channels = s.rank() > 1 ? s.dim(1) : 1;
    inject_inplace(out.data(), out.size(), batch, channels);
}

void ErrorInjector::apply_device_field(float* data, std::size_t count, std::size_t batch,
                                       std::size_t channels) {
    const double gain = device_.drift_gain();
    const double sigma_out =
        std::sqrt(static_cast<double>(vmacs_per_output(config_, n_tot_))) *
        device_.cell_offset_sigma;
    if (gain == 1.0 && sigma_out == 0.0) return;  // exact pass-through, no -0.0 flips

    // Degenerate shapes (rank-1 buffers, mismatched strides) collapse to
    // one shared channel rather than guessing a layout.
    std::size_t b = batch == 0 ? 1 : batch;
    std::size_t ch = channels == 0 ? 1 : channels;
    if (count % b != 0) b = 1;
    std::size_t per_sample = count / b;
    if (per_sample % ch != 0) ch = 1;
    const std::size_t spatial = per_sample / ch;

    if (offset_field_.size() < ch) {
        // Frozen realization: (chip, layer, channel)-keyed unit normals.
        // The injector's stream seed doubles as a stable layer identity —
        // it is a pure function of the model seed and layer position.
        for (std::size_t c = offset_field_.size(); c < ch; ++c) {
            offset_field_.push_back(
                device_.cell_normal(kFamilyLayerOffset, streams_.seed(), c));
        }
    }
    runtime::metrics::add(runtime::metrics::Counter::kVariationFieldSamples,
                          static_cast<std::uint64_t>(count));
    for (std::size_t n = 0; n < b; ++n) {
        float* sample = data + n * per_sample;
        for (std::size_t c = 0; c < ch; ++c) {
            const double offset = sigma_out * offset_field_[c];
            float* row = sample + c * spatial;
            for (std::size_t i = 0; i < spatial; ++i) {
                row[i] = static_cast<float>(gain * row[i] + offset);
            }
        }
    }
}

void ErrorInjector::inject_inplace(float* data, std::size_t count, std::size_t batch,
                                   std::size_t channels) {
    if (device_.active()) apply_device_field(data, count, batch, channels);
    runtime::trace::Span span("ErrorInjector.inject",
                              mode_ == InjectionMode::kLumpedGaussian ? "mode=lumped_gaussian"
                                                                      : "mode=per_vmac_uniform");
    runtime::metrics::add(runtime::metrics::Counter::kInjectedSamples,
                          static_cast<std::uint64_t>(count));
    const runtime::RngStream pass_streams = streams_.substream(forward_count_++);
    const std::size_t tiles = (count + kRngTile - 1) / kRngTile;

    switch (mode_) {
        case InjectionMode::kLumpedGaussian: {
            const double sigma = total_error_stddev(config_, n_tot_);
            runtime::parallel_for(
                0, tiles, runtime::suggest_grain(tiles, 1),
                [&](std::size_t t_begin, std::size_t t_end) {
                    for (std::size_t t = t_begin; t < t_end; ++t) {
                        Rng tile_rng = pass_streams.stream(t);
                        const std::size_t hi = std::min(count, (t + 1) * kRngTile);
                        for (std::size_t i = t * kRngTile; i < hi; ++i) {
                            data[i] += static_cast<float>(tile_rng.normal(0.0, sigma));
                        }
                    }
                });
            break;
        }
        case InjectionMode::kPerVmacUniform: {
            const double lsb = vmac_lsb(config_);
            const std::size_t cells = vmacs_per_output(config_, n_tot_);
            runtime::parallel_for(
                0, tiles, runtime::suggest_grain(tiles, 1),
                [&](std::size_t t_begin, std::size_t t_end) {
                    for (std::size_t t = t_begin; t < t_end; ++t) {
                        Rng tile_rng = pass_streams.stream(t);
                        const std::size_t hi = std::min(count, (t + 1) * kRngTile);
                        for (std::size_t i = t * kRngTile; i < hi; ++i) {
                            double err = 0.0;
                            for (std::size_t v = 0; v < cells; ++v) {
                                err += tile_rng.uniform(-0.5 * lsb, 0.5 * lsb);
                            }
                            data[i] += static_cast<float>(err);
                        }
                    }
                });
            break;
        }
    }
}

}  // namespace ams::vmac
