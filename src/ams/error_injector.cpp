#include "ams/error_injector.hpp"

#include <stdexcept>

namespace ams::vmac {

ErrorInjector::ErrorInjector(VmacConfig config, std::size_t n_tot, Rng rng, InjectionMode mode)
    : config_(config), n_tot_(n_tot), rng_(rng), mode_(mode) {
    config_.validate();
    if (n_tot == 0) throw std::invalid_argument("ErrorInjector: n_tot must be > 0");
}

void ErrorInjector::set_config(const VmacConfig& config) {
    config.validate();
    config_ = config;
}

double ErrorInjector::error_stddev() const {
    return total_error_stddev(config_, n_tot_);
}

Tensor ErrorInjector::forward(const Tensor& input) {
    if (!enabled_) return input;
    Tensor out = input;
    switch (mode_) {
        case InjectionMode::kLumpedGaussian: {
            const double sigma = total_error_stddev(config_, n_tot_);
            for (std::size_t i = 0; i < out.size(); ++i) {
                out[i] += static_cast<float>(rng_.normal(0.0, sigma));
            }
            break;
        }
        case InjectionMode::kPerVmacUniform: {
            const double lsb = vmac_lsb(config_);
            const std::size_t cells = vmacs_per_output(config_, n_tot_);
            for (std::size_t i = 0; i < out.size(); ++i) {
                double err = 0.0;
                for (std::size_t v = 0; v < cells; ++v) {
                    err += rng_.uniform(-0.5 * lsb, 0.5 * lsb);
                }
                out[i] += static_cast<float>(err);
            }
            break;
        }
    }
    return out;
}

}  // namespace ams::vmac
