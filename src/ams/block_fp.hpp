// BlockFpVmac: adaptive block floating-point VMAC datapath.
//
// Instead of the cell's fixed sign-magnitude operand grids, each chunk's
// operand vector shares one block exponent (the max exponent over the
// chunk, "adaptive" because it follows the data): every value becomes an
// integer mantissa times a power-of-two quantum, the dot product is an
// exact integer multiply-accumulate, and the result returns to the
// analog value domain through two power-of-two scales (exact in IEEE
// arithmetic). The ADC then converts the analog accumulation exactly as
// in VmacCell — one conversion per chunk — so the datapath slots into
// the VmacBackend cost contract with conversions_per_vmac() == 1.
//
// Compared to the fixed-grid cell, small-magnitude chunks keep far more
// relative precision (their block exponent shrinks the quantum), while
// worst-case full-scale chunks match a (mantissa_bits)-bit fixed grid.
#pragma once

#include <cstddef>
#include <span>

#include "ams/adc_quantizer.hpp"
#include "ams/vmac_cell.hpp"
#include "ams/vmac_config.hpp"
#include "tensor/rng.hpp"

namespace ams::vmac {

/// One block-floating-point VMAC. Stateless across chunks (clone-safe).
class BlockFpVmac {
public:
    /// `mantissa_bits_*` are the magnitude bits per operand mantissa
    /// (sign carried separately, like the cell's sign-magnitude codecs).
    /// Throws std::invalid_argument on invalid config/analog or mantissa
    /// bits outside [2, 30].
    BlockFpVmac(const VmacConfig& config, std::size_t mantissa_bits_w,
                std::size_t mantissa_bits_x, const AnalogOptions& analog);

    /// Digital output for one chunk (<= nmult operand pairs): block
    /// encode, exact integer dot, optional analog noise, one ADC
    /// conversion. Mirrors VmacCell::dot's averaging and noise flow.
    /// Deterministic when both noise sigmas are zero (no rng draws).
    [[nodiscard]] double dot(std::span<const double> weights,
                             std::span<const double> activations, Rng& rng) const;

    /// Digital full scale of the analog dot product (as VmacCell).
    [[nodiscard]] double full_scale() const;

    /// Analytic composite ENOB: ADC quantization + thermal noise +
    /// worst-case (full-scale block) mantissa quantization variance.
    /// Adaptive-exponent gains on small-magnitude data are what the
    /// empirical sweeps measure; this is the conservative floor.
    [[nodiscard]] double effective_enob() const;

    [[nodiscard]] const VmacConfig& config() const { return config_; }
    [[nodiscard]] const AnalogOptions& analog() const { return analog_; }
    [[nodiscard]] std::size_t mantissa_bits_w() const { return mw_; }
    [[nodiscard]] std::size_t mantissa_bits_x() const { return mx_; }

private:
    VmacConfig config_;
    AnalogOptions analog_;
    std::size_t mw_;
    std::size_t mx_;
    AdcQuantizer quantizer_;
};

}  // namespace ams::vmac
