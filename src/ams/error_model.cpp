#include "ams/error_model.hpp"

#include <cmath>
#include <stdexcept>

namespace ams::vmac {

double vmac_lsb(const VmacConfig& config) {
    config.validate();
    return static_cast<double>(config.nmult) * std::exp2(-(config.enob - 1.0));
}

double vmac_error_variance(const VmacConfig& config) {
    const double lsb = vmac_lsb(config);
    return lsb * lsb / 12.0;
}

std::size_t vmacs_per_output(const VmacConfig& config, std::size_t n_tot) {
    config.validate();
    if (n_tot == 0) throw std::invalid_argument("vmacs_per_output: n_tot must be > 0");
    return (n_tot + config.nmult - 1) / config.nmult;
}

double total_error_variance(const VmacConfig& config, std::size_t n_tot) {
    if (n_tot == 0) throw std::invalid_argument("total_error_variance: n_tot must be > 0");
    const double ratio =
        static_cast<double>(n_tot) / static_cast<double>(config.nmult);
    return ratio * vmac_error_variance(config);
}

double total_error_stddev(const VmacConfig& config, std::size_t n_tot) {
    return std::sqrt(total_error_variance(config, n_tot));
}

double equivalent_enob(double enob, std::size_t nmult_from, std::size_t nmult_to) {
    if (nmult_from == 0 || nmult_to == 0) {
        throw std::invalid_argument("equivalent_enob: nmult must be > 0");
    }
    return enob + 0.5 * std::log2(static_cast<double>(nmult_to) /
                                  static_cast<double>(nmult_from));
}

double noise_scale(double enob, std::size_t nmult) {
    if (nmult == 0) throw std::invalid_argument("noise_scale: nmult must be > 0");
    return std::sqrt(static_cast<double>(nmult)) * std::exp2(-(enob - 1.0));
}

}  // namespace ams::vmac
