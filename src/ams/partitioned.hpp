// PartitionedVmac: multiplication partitioning (paper Sec. 4, method 1).
//
// "Based on long multiplication ... splitting the weight into NW parts
// and the activation into NX parts would require NW*NX multiplications of
// BW/NW-bit and BX/NX-bit numbers. Because the full precision of any
// partial product is smaller than that of the whole product, a
// lower-resolution ADC could be used than in the unpartitioned case while
// still incurring less injected error overall."
//
// Each (p, q) chunk pair forms its own analog VMAC over the Nmult operand
// pairs; its digital output is shifted by the chunk significances and the
// NW*NX partial results are added digitally.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ams/vmac_cell.hpp"

namespace ams::vmac {

/// Partitioning parameters.
struct PartitionOptions {
    std::size_t nw = 2;          ///< weight chunks
    std::size_t nx = 2;          ///< activation chunks
    double enob_partial = 8.0;   ///< ADC resolution for each partial conversion
    /// ENOB reduction per unit of chunk-significance depth (p + q): the
    /// paper notes low-significance partial products can be converted at
    /// lower precision. 0 disables the discount.
    double significance_drop = 0.0;
    /// Floor for the discounted resolution.
    double min_enob = 4.0;
    AnalogOptions analog;
};

/// AMS VMAC computed via partitioned long multiplication.
class PartitionedVmac {
public:
    /// `base.bits_w - 1` must be divisible by nw and `base.bits_x - 1` by
    /// nx (sign-magnitude: the sign bit is shared by all chunks). Throws
    /// std::invalid_argument otherwise.
    PartitionedVmac(const VmacConfig& base, const PartitionOptions& options);

    /// Digital dot product of up to Nmult operand pairs through the
    /// partitioned datapath.
    [[nodiscard]] double dot(std::span<const double> weights,
                             std::span<const double> activations, Rng& rng) const;

    /// Operand-quantized exact dot product (no conversion error), for
    /// measuring the partitioned datapath's injected error.
    [[nodiscard]] double dot_ideal(std::span<const double> weights,
                                   std::span<const double> activations) const;

    /// ADC conversions needed per VMAC (= nw * nx).
    [[nodiscard]] std::size_t conversions_per_vmac() const {
        return options_.nw * options_.nx;
    }

    /// ADC resolution used for chunk pair (p, q); p = q = 0 is most
    /// significant.
    [[nodiscard]] double partial_enob(std::size_t p, std::size_t q) const;

    /// Analytic std-dev of the injected quantization error: the partial
    /// conversions' uniform errors (LSB^2/12 each) scaled by their digital
    /// shift-and-add weights, summed in variance. Thermal noise excluded.
    [[nodiscard]] double quantization_error_stddev() const;

    /// Equivalent monolithic-converter ENOB implied by
    /// quantization_error_stddev() at the cell's natural full scale — the
    /// number the paper compares against the unpartitioned datapath.
    [[nodiscard]] double effective_enob() const;

    /// Digital shift-and-add weight of partial (p, q): undoes the chunk
    /// normalizations and applies the binary-weighted significance.
    [[nodiscard]] double partial_weight(std::size_t p, std::size_t q) const;

    [[nodiscard]] const VmacConfig& base_config() const { return base_; }
    [[nodiscard]] const PartitionOptions& options() const { return options_; }

private:
    VmacConfig base_;
    PartitionOptions options_;
    std::size_t mag_bits_w_;    ///< BW - 1
    std::size_t mag_bits_x_;    ///< BX - 1
    std::size_t chunk_bits_w_;  ///< mag_bits_w / nw
    std::size_t chunk_bits_x_;  ///< mag_bits_x / nx
    quant::SignMagCodec weight_codec_;
    quant::SignMagCodec act_codec_;
};

}  // namespace ams::vmac
