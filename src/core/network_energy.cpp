#include "core/network_energy.hpp"

#include <stdexcept>

namespace ams::core {

std::vector<energy::LayerEnergy> extract_layer_shapes(models::ResNet& model,
                                                      const Tensor& probe) {
    if (probe.rank() != 4 || probe.dim(0) != 1) {
        throw std::invalid_argument("extract_layer_shapes: probe must be a batch of 1");
    }
    const bool was_training = model.training();
    model.set_training(false);
    model.reset_stats();
    model.set_recording(true);
    (void)model.forward(probe);
    model.set_recording(false);
    model.set_training(was_training);

    std::vector<energy::LayerEnergy> shapes;
    const auto units = model.conv_units();
    for (std::size_t i = 0; i < units.size(); ++i) {
        energy::LayerEnergy row;
        row.name = "conv" + std::to_string(i) + " (" +
                   std::to_string(units[i]->conv().conv().options().kernel) + "x" +
                   std::to_string(units[i]->conv().conv().options().kernel) + ", C" +
                   std::to_string(units[i]->conv().conv().options().in_channels) + "->" +
                   std::to_string(units[i]->conv().conv().options().out_channels) + ")";
        row.n_tot = units[i]->conv().n_tot();
        row.outputs = units[i]->stats().count();  // elements of one forward
        shapes.push_back(std::move(row));
    }
    model.reset_stats();

    energy::LayerEnergy fc;
    fc.name = "fc";
    fc.n_tot = model.fc_injector().n_tot();
    fc.outputs = model.config().num_classes;
    shapes.push_back(std::move(fc));
    return shapes;
}

}  // namespace ams::core
