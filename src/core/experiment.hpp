// ExperimentEnv: the paper's experimental pipeline, end to end.
//
// Owns the dataset and the three model phases:
//   1. pretrained FP32 network          (paper: pretrained ResNet-50)
//   2. DoReFa-quantized retrained nets  (Table 1 rows)
//   3. AMS-error retrained nets         (Figs. 4-6, Table 2)
// Each phase starts from the previous phase's weights, exactly as in the
// paper ("retraining refers to taking a pretrained FP32 network and
// continuing to train it after modifying the network to reflect the
// intended underlying hardware"). Trained states are cached on disk so
// every bench binary can run standalone without repeating training.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ams/vmac_backend.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/resnet.hpp"
#include "train/checkpoint_cache.hpp"
#include "train/trainer.hpp"

namespace ams::core {

/// Everything that parameterizes an experiment campaign.
struct ExperimentOptions {
    data::DatasetOptions dataset;
    std::size_t eval_passes = 5;  ///< paper: sample mean of five passes
    std::size_t batch_size = 64;
    train::TrainOptions fp32_train;
    train::TrainOptions retrain;
    std::string cache_dir;
    bool verbose = false;

    /// Standard configuration; honors two environment variables:
    ///   REPRO_FAST=1      shrink dataset/epochs for quick runs
    ///   AMSNET_VERBOSE=1  per-epoch progress logging
    [[nodiscard]] static ExperimentOptions standard();
};

/// The pipeline.
class ExperimentEnv {
public:
    explicit ExperimentEnv(ExperimentOptions options);

    [[nodiscard]] const data::SyntheticImageNet& dataset() const { return dataset_; }
    [[nodiscard]] const ExperimentOptions& options() const { return options_; }

    // ----- model variant factories -----
    [[nodiscard]] models::LayerCommon fp32_common() const;
    [[nodiscard]] models::LayerCommon quant_common(std::size_t bits_w, std::size_t bits_x) const;
    /// `device` layers a chip's static non-idealities (offsets/drift)
    /// into every injector; the inactive default preserves the
    /// historical pure-Gaussian model.
    [[nodiscard]] models::LayerCommon ams_common(
        std::size_t bits_w, std::size_t bits_x, const vmac::VmacConfig& vmac_cfg,
        vmac::InjectionMode mode = vmac::InjectionMode::kLumpedGaussian,
        const vmac::DeviceProfile& device = {}) const;
    [[nodiscard]] std::unique_ptr<models::ResNet> make_model(
        const models::LayerCommon& common) const;

    // ----- cached pipeline phases -----
    /// Trains (or loads) the FP32 baseline and returns its weights.
    [[nodiscard]] TensorMap fp32_state();

    /// Retrains (or loads) the DoReFa-quantized network at the given
    /// bitwidths, starting from the FP32 weights. No AMS error.
    [[nodiscard]] TensorMap quantized_state(std::size_t bits_w, std::size_t bits_x);

    /// Retrains (or loads) with AMS error injected in the loop, starting
    /// from the quantized weights. `frozen` lists parameter groups held
    /// fixed during retraining (Table 2); they still forward/backward.
    /// `key_tag` (e.g. vmac::BackendOptions::str()) distinguishes cache
    /// entries whose injected error was derived from a non-default
    /// hardware backend; empty keeps the historical key. `device` puts a
    /// chip's statics into the retraining loop (STE robust retraining) —
    /// pass a key_tag that encodes the profile (BackendOptions::str()
    /// does) so chips get distinct cache lineages chained off the same
    /// fp32/quantized parents.
    [[nodiscard]] TensorMap ams_retrained_state(
        std::size_t bits_w, std::size_t bits_x, const vmac::VmacConfig& vmac_cfg,
        const std::vector<models::LayerGroup>& frozen = {}, const std::string& key_tag = "",
        const vmac::DeviceProfile& device = {});

    // ----- evaluation -----
    /// Loads `state` into a fresh model of the given variant and runs the
    /// paper's multi-pass validation protocol. `ctx` selects the worker's
    /// evaluation context (arena reuse across sweep points); nullptr uses
    /// a context local to the call. Results are identical either way.
    [[nodiscard]] train::EvalResult evaluate_state(const TensorMap& state,
                                                   const models::LayerCommon& common,
                                                   runtime::EvalContext* ctx = nullptr);

    // ----- concurrent sweep driver -----
    /// One swept ENOB point of a Fig. 4/5/8-style campaign.
    struct EnobSweepPoint {
        double enob = 0.0;            ///< swept per-conversion (grid) resolution
        double effective_enob = 0.0;  ///< backend-equivalent monolithic ENOB injected
        train::EvalResult eval_only;  ///< AMS at evaluation only, quantized weights
        train::EvalResult retrained;  ///< AMS error also in the retraining loop
    };

    struct EnobSweepOptions {
        std::size_t nmult = 8;   ///< paper: Nmult = 8 for Figs. 4/5
        bool eval_only = true;   ///< measure injection on the quantized net
        bool retrain = true;     ///< retrain with error in the loop and measure

        /// Hardware datapath each swept point models. The grid ENOB drives
        /// the backend's converter resolution; the injected network-level
        /// error uses the backend's equivalent monolithic ENOB (Eq. 2
        /// equivalence via VmacBackend::effective_enob), and retrain cache
        /// keys gain a BackendOptions::str() tag. The default (bit-exact)
        /// reproduces the historical sweep bit-for-bit, keys included.
        /// backend.variation carries the per-point chip profile of a
        /// Monte-Carlo fleet: its statics are applied by the injectors'
        /// device pre-pass (and by the decorated backend at chunk level),
        /// while the stochastic Gaussian keeps the bare datapath's
        /// equivalent ENOB — see compute_enob_point.
        vmac::BackendOptions backend{};
        /// Chunks per output accumulator assumed when amortizing stateful
        /// backends' per-output conversions into the effective ENOB.
        std::size_t backend_ref_chunks = 8;
        /// Analog non-idealities for backend construction.
        vmac::AnalogOptions analog{};
    };

    /// Runs every ENOB point of a sweep concurrently on the runtime pool
    /// (each point is a self-contained retrain+evaluate with its own model
    /// and fixed seeds, so results are identical to the serial order).
    /// Shared fp32/quantized prerequisites are materialized once up front.
    [[nodiscard]] std::vector<EnobSweepPoint> ams_enob_sweep(
        std::size_t bits_w, std::size_t bits_x, const std::vector<double>& enobs,
        const EnobSweepOptions& sweep);
    [[nodiscard]] std::vector<EnobSweepPoint> ams_enob_sweep(
        std::size_t bits_w, std::size_t bits_x, const std::vector<double>& enobs) {
        return ams_enob_sweep(bits_w, bits_x, enobs, EnobSweepOptions{});
    }

    /// Computes one sweep point — the loop body of ams_enob_sweep,
    /// exposed so the multi-process sweep orchestrator (src/sweep) runs
    /// the exact same code per point. `quant` is the shared quantized
    /// prerequisite state (quantized_state(bits_w, bits_x)). Results are
    /// position-deterministic: independent of thread count, of which
    /// process computes the point, and of what ran before it.
    [[nodiscard]] EnobSweepPoint compute_enob_point(std::size_t bits_w, std::size_t bits_x,
                                                    double enob, const EnobSweepOptions& sweep,
                                                    const TensorMap& quant,
                                                    runtime::EvalContext* ctx = nullptr);

    /// Key prefix identifying the dataset + model architecture, used to
    /// build cache keys.
    [[nodiscard]] std::string base_key() const;

    // ----- content-addressed cache keys -----
    // Each key canonically serializes every input that affects the
    // trained state (dataset, architecture, quant bits, backend tag,
    // frozen groups, full training schedule) plus the parent phase's
    // hash, so any upstream config change re-keys the whole lineage.
    // The matching legacy string key is attached for in-place migration
    // of pre-content-hash cache directories.
    [[nodiscard]] train::CacheKey fp32_cache_key() const;
    [[nodiscard]] train::CacheKey quantized_cache_key(std::size_t bits_w,
                                                      std::size_t bits_x) const;
    [[nodiscard]] train::CacheKey ams_cache_key(
        std::size_t bits_w, std::size_t bits_x, const vmac::VmacConfig& vmac_cfg,
        const std::vector<models::LayerGroup>& frozen = {},
        const std::string& key_tag = "") const;

private:
    ExperimentOptions options_;
    data::SyntheticImageNet dataset_;

    [[nodiscard]] TensorMap train_from(const TensorMap* init_state,
                                       const models::LayerCommon& common,
                                       const train::TrainOptions& train_opts,
                                       const std::vector<models::LayerGroup>& frozen,
                                       const std::string& phase_name);
};

/// Reads a boolean environment flag ("1" = true).
[[nodiscard]] bool env_flag(const char* name);

}  // namespace ams::core
