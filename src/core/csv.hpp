// CSV artifact writer: every experiment bench can dump its series to
// ./artifacts/*.csv for external plotting alongside the printed tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ams::core {

/// Minimal RFC-4180-ish CSV writer (quotes fields containing commas,
/// quotes, or newlines).
class CsvWriter {
public:
    /// Opens `path` for writing (parent directories are created) and
    /// emits the header row. Throws std::runtime_error on failure.
    CsvWriter(const std::string& path, const std::vector<std::string>& headers);

    /// Writes one row; pads or truncates to the header count.
    void add_row(const std::vector<std::string>& cells);

    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
    std::ofstream out_;
    std::size_t columns_;

    void write_row(const std::vector<std::string>& cells);
};

/// Default artifact directory, honoring $AMSNET_ARTIFACT_DIR.
[[nodiscard]] std::string artifact_dir();

}  // namespace ams::core
