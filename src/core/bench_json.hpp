// Shared machine-readable bench artifact writer.
//
// Every bench that emits an artifacts/BENCH_*.json file builds it through
// BenchReport so the files share one schema ("amsnet-bench-v1"):
//
//   {
//     "schema": "amsnet-bench-v1",
//     "bench": "<name>",
//     "config": { flat name -> value },
//     "series": [ { flat name -> value }, ... ],
//     "metrics": { runtime counter snapshot }   // when captured
//   }
//
// `config` holds the knobs the run was taken under (threads, shapes,
// trace level), `series` the measured rows, and `metrics` an optional
// snapshot of the runtime::metrics counters so artifacts carry their own
// observability context (FLOPs, conversions, arena HWM) without a
// separate metrics.json. Values are doubles, integers, strings or bools;
// insertion order is preserved so diffs stay stable across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ams::core {

/// One flat JSON object with insertion-ordered heterogeneous fields.
class BenchFields {
public:
    void set(const std::string& key, double value);
    void set(const std::string& key, std::uint64_t value);
    void set(const std::string& key, std::int64_t value);
    void set(const std::string& key, int value) { set(key, static_cast<std::int64_t>(value)); }
    void set(const std::string& key, const std::string& value);
    void set(const std::string& key, const char* value) { set(key, std::string(value)); }
    void set(const std::string& key, bool value);

    [[nodiscard]] bool empty() const { return fields_.empty(); }
    void write(std::ostream& os, int indent) const;

private:
    enum class Kind { kDouble, kUint, kInt, kString, kBool };
    struct Field {
        std::string key;
        Kind kind;
        double d = 0.0;
        std::uint64_t u = 0;
        std::int64_t i = 0;
        std::string s;
        bool b = false;
    };
    Field& slot(const std::string& key);

    std::vector<Field> fields_;
};

/// Builder for one BENCH_<name>.json artifact.
class BenchReport {
public:
    explicit BenchReport(std::string name);

    /// Run-level knobs ("threads", "avx2_available", ...).
    BenchFields& config() { return config_; }

    /// Bench hygiene: records the process-wide runtime environment the
    /// run executed under into config() — thread-pool parallelism,
    /// hardware concurrency, the active SIMD arm (AMSNET_SIMD) and the
    /// trace level (AMSNET_TRACE) — so artifacts are self-describing.
    /// Call after any set_global_threads / set_level override.
    void record_runtime_env();

    /// Appends and returns one measurement row.
    BenchFields& add_row();

    /// Snapshots every nonzero runtime::metrics counter and gauge into the
    /// "metrics" section (call once, after the measured work).
    void capture_runtime_metrics();

    void write(std::ostream& os) const;

    /// Writes artifact_dir()/BENCH_<name>.json and returns the path.
    std::string write_artifact() const;

private:
    std::string name_;
    BenchFields config_;
    std::vector<BenchFields> series_;
    BenchFields metrics_;
};

}  // namespace ams::core
