// Console table/report formatting for the experiment benches: every bench
// prints the paper's reference values next to the values measured on this
// substrate, in aligned fixed-width columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ams::core {

/// A simple column-aligned text table.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Adds one row; pads or truncates to the header count.
    void add_row(std::vector<std::string> cells);

    /// Renders with a header underline and two-space gutters.
    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point formatting helpers.
[[nodiscard]] std::string fmt_fixed(double value, int decimals);
/// Percentage with sign preserved, e.g. "3.53%".
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 2);
/// "0.781 +/- 0.003".
[[nodiscard]] std::string fmt_mean_std(double mean, double stddev, int decimals = 3);
/// Scientific-ish energy formatting: "313 fJ", "1.25 pJ".
[[nodiscard]] std::string fmt_energy_fj(double femtojoules);

/// Prints a bench banner: title plus paper reference note.
void print_banner(std::ostream& os, const std::string& title, const std::string& reference);

}  // namespace ams::core
