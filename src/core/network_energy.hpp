// Bridges the model zoo and the energy accountant: extracts per-layer
// (n_tot, output count) shapes from a live ResNet by probing it with one
// input, so whole-network inference energy can be computed for any
// (ENOB, Nmult) without hand-maintained layer tables.
#pragma once

#include <vector>

#include "energy/vmac_energy.hpp"
#include "models/resnet.hpp"

namespace ams::core {

/// Runs a single probe input (batch of 1) through `model` and returns one
/// LayerEnergy shape row per conv layer plus the FC head, in forward
/// order. Only `name`, `n_tot`, and `outputs` are filled; feed the result
/// to energy::account_network. Throws std::invalid_argument if the probe
/// batch is not 1.
[[nodiscard]] std::vector<energy::LayerEnergy> extract_layer_shapes(models::ResNet& model,
                                                                    const Tensor& probe);

}  // namespace ams::core
