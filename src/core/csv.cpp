#include "core/csv.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

namespace ams::core {

namespace {

std::string escape(const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

std::string artifact_dir() {
    if (const char* env = std::getenv("AMSNET_ARTIFACT_DIR"); env != nullptr && *env != '\0') {
        return env;
    }
    return "artifacts";
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& headers)
    : path_(path), columns_(headers.size()) {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
    out_.open(path);
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    write_row(headers);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < columns_; ++i) {
        if (i != 0) out_ << ',';
        if (i < cells.size()) out_ << escape(cells[i]);
    }
    out_ << '\n';
    if (!out_) throw std::runtime_error("CsvWriter: write failed for " + path_);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
    write_row(cells);
}

}  // namespace ams::core
