#include "core/bench_json.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include <thread>

#include "core/csv.hpp"
#include "runtime/metrics.hpp"
#include "runtime/simd.hpp"
#include "runtime/thread_pool.hpp"

namespace ams::core {

namespace {

void write_escaped(std::ostream& os, const std::string& text) {
    for (char c : text) {
        if (c == '"' || c == '\\') {
            os << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            os << ' ';
        } else {
            os << c;
        }
    }
}

void write_double(std::ostream& os, double v) {
    if (!std::isfinite(v)) {
        os << "null";  // JSON has no NaN/Inf; null keeps the file loadable
        return;
    }
    std::ostringstream tmp;
    tmp << v;
    os << tmp.str();
}

}  // namespace

BenchFields::Field& BenchFields::slot(const std::string& key) {
    for (Field& f : fields_) {
        if (f.key == key) return f;
    }
    fields_.push_back(Field{key, Kind::kDouble, 0.0, 0, 0, {}, false});
    return fields_.back();
}

void BenchFields::set(const std::string& key, double value) {
    Field& f = slot(key);
    f.kind = Kind::kDouble;
    f.d = value;
}

void BenchFields::set(const std::string& key, std::uint64_t value) {
    Field& f = slot(key);
    f.kind = Kind::kUint;
    f.u = value;
}

void BenchFields::set(const std::string& key, std::int64_t value) {
    Field& f = slot(key);
    f.kind = Kind::kInt;
    f.i = value;
}

void BenchFields::set(const std::string& key, const std::string& value) {
    Field& f = slot(key);
    f.kind = Kind::kString;
    f.s = value;
}

void BenchFields::set(const std::string& key, bool value) {
    Field& f = slot(key);
    f.kind = Kind::kBool;
    f.b = value;
}

void BenchFields::write(std::ostream& os, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    os << "{";
    bool first = true;
    for (const Field& f : fields_) {
        if (!first) os << ",";
        first = false;
        os << "\n" << pad << "  \"";
        write_escaped(os, f.key);
        os << "\": ";
        switch (f.kind) {
            case Kind::kDouble: write_double(os, f.d); break;
            case Kind::kUint: os << f.u; break;
            case Kind::kInt: os << f.i; break;
            case Kind::kString:
                os << '"';
                write_escaped(os, f.s);
                os << '"';
                break;
            case Kind::kBool: os << (f.b ? "true" : "false"); break;
        }
    }
    if (!fields_.empty()) os << "\n" << pad;
    os << "}";
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

BenchFields& BenchReport::add_row() {
    series_.emplace_back();
    return series_.back();
}

void BenchReport::record_runtime_env() {
    config_.set("threads", static_cast<std::uint64_t>(runtime::ThreadPool::global().parallelism()));
    config_.set("hardware_concurrency",
                static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    config_.set("simd", simd::level_name(simd::active_level()));
    config_.set("trace", runtime::metrics::level_name(runtime::metrics::level()));
}

void BenchReport::capture_runtime_metrics() {
    namespace m = runtime::metrics;
    metrics_ = BenchFields{};
    for (int c = 0; c < static_cast<int>(m::Counter::kCount); ++c) {
        const auto counter = static_cast<m::Counter>(c);
        const std::uint64_t v = m::value(counter);
        if (v != 0) metrics_.set(m::counter_name(counter), v);
    }
    for (int g = 0; g < static_cast<int>(m::Gauge::kCount); ++g) {
        const auto gauge = static_cast<m::Gauge>(g);
        const std::uint64_t v = m::gauge_value(gauge);
        if (v != 0) metrics_.set(m::gauge_name(gauge), v);
    }
}

void BenchReport::write(std::ostream& os) const {
    os << "{\n";
    os << "  \"schema\": \"amsnet-bench-v1\",\n";
    os << "  \"bench\": \"";
    write_escaped(os, name_);
    os << "\",\n";
    os << "  \"config\": ";
    config_.write(os, 2);
    os << ",\n  \"series\": [";
    for (std::size_t i = 0; i < series_.size(); ++i) {
        os << (i == 0 ? "\n    " : ",\n    ");
        series_[i].write(os, 4);
    }
    os << (series_.empty() ? "]" : "\n  ]");
    if (!metrics_.empty()) {
        os << ",\n  \"metrics\": ";
        metrics_.write(os, 2);
    }
    os << "\n}\n";
}

std::string BenchReport::write_artifact() const {
    const std::string path = artifact_dir() + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) throw std::runtime_error("BenchReport: cannot open " + path);
    write(out);
    if (!out) throw std::runtime_error("BenchReport: write failed for " + path);
    return path;
}

}  // namespace ams::core
