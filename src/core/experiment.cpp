#include "core/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/trace.hpp"

namespace ams::core {

bool env_flag(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && std::string(v) == "1";
}

ExperimentOptions ExperimentOptions::standard() {
    ExperimentOptions opts;
    const bool fast = env_flag("REPRO_FAST");
    opts.verbose = env_flag("AMSNET_VERBOSE");

    opts.dataset.classes = 10;
    opts.dataset.train_per_class = fast ? 60 : 200;
    opts.dataset.val_per_class = fast ? 20 : 50;
    opts.dataset.image_size = 16;
    opts.dataset.channels = 3;
    opts.dataset.noise_sigma = 0.4f;
    opts.dataset.seed = 0x1337C0DEULL;

    opts.eval_passes = 5;
    opts.batch_size = 64;

    opts.fp32_train.epochs = fast ? 4 : 16;
    opts.fp32_train.batch_size = opts.batch_size;
    opts.fp32_train.patience = 4;
    opts.fp32_train.sgd = {/*lr=*/0.05f, /*momentum=*/0.9f, /*weight_decay=*/5e-4f};
    opts.fp32_train.shuffle_seed = 99;

    // The paper retrains with a fixed small learning rate and no schedule.
    opts.retrain.epochs = fast ? 3 : 8;
    opts.retrain.batch_size = opts.batch_size;
    opts.retrain.patience = 3;
    opts.retrain.sgd = {/*lr=*/0.01f, /*momentum=*/0.9f, /*weight_decay=*/0.0f};
    opts.retrain.shuffle_seed = 177;

    opts.cache_dir = train::default_cache_dir();
    return opts;
}

ExperimentEnv::ExperimentEnv(ExperimentOptions options)
    : options_(std::move(options)), dataset_(options_.dataset) {}

models::LayerCommon ExperimentEnv::fp32_common() const {
    models::LayerCommon c;
    c.bits_w = quant::kFloatBits;
    c.bits_x = quant::kFloatBits;
    c.ams_enabled = false;
    return c;
}

models::LayerCommon ExperimentEnv::quant_common(std::size_t bits_w, std::size_t bits_x) const {
    models::LayerCommon c;
    c.bits_w = bits_w;
    c.bits_x = bits_x;
    c.ams_enabled = false;
    return c;
}

models::LayerCommon ExperimentEnv::ams_common(std::size_t bits_w, std::size_t bits_x,
                                              const vmac::VmacConfig& vmac_cfg,
                                              vmac::InjectionMode mode,
                                              const vmac::DeviceProfile& device) const {
    models::LayerCommon c;
    c.bits_w = bits_w;
    c.bits_x = bits_x;
    c.ams_enabled = true;
    c.vmac = vmac_cfg;
    c.mode = mode;
    c.device = device;
    return c;
}

std::unique_ptr<models::ResNet> ExperimentEnv::make_model(
    const models::LayerCommon& common) const {
    return std::make_unique<models::ResNet>(models::mini_resnet_config(
        common, options_.dataset.classes, dataset_.max_abs_value(), /*seed=*/42));
}

std::string ExperimentEnv::base_key() const {
    std::ostringstream os;
    os << "mini_c" << options_.dataset.classes << "_t" << options_.dataset.train_per_class
       << "_v" << options_.dataset.val_per_class << "_s" << options_.dataset.image_size
       << "_seed" << options_.dataset.seed;
    return os.str();
}

namespace {

// Canonical serialization of one training schedule into a content key.
// Every field that steers fit() is included; forgetting one here is the
// stale-cache bug the content hash exists to prevent.
void add_schedule(train::CacheKey& key, const std::string& prefix,
                  const train::TrainOptions& t) {
    key.add(prefix + ".epochs", t.epochs);
    key.add(prefix + ".batch_size", t.batch_size);
    key.add(prefix + ".patience", t.patience);
    key.add(prefix + ".grad_bits", t.grad_bits);
    key.add(prefix + ".shuffle_seed", std::uint64_t{t.shuffle_seed});
    key.add(prefix + ".lr", static_cast<double>(t.sgd.lr));
    key.add(prefix + ".momentum", static_cast<double>(t.sgd.momentum));
    key.add(prefix + ".weight_decay", static_cast<double>(t.sgd.weight_decay));
}

}  // namespace

train::CacheKey ExperimentEnv::fp32_cache_key() const {
    const std::string legacy = base_key() + "_fp32";
    train::CacheKey key;
    key.label(legacy).legacy(legacy);
    key.add("schema", "amsnet-ckpt-key-v1");
    key.add("arch", "mini_resnet");
    key.add("model_seed", std::uint64_t{42});
    key.add("data.classes", options_.dataset.classes);
    key.add("data.train_per_class", options_.dataset.train_per_class);
    key.add("data.val_per_class", options_.dataset.val_per_class);
    key.add("data.image_size", options_.dataset.image_size);
    key.add("data.channels", options_.dataset.channels);
    key.add("data.noise_sigma", static_cast<double>(options_.dataset.noise_sigma));
    key.add("data.seed", std::uint64_t{options_.dataset.seed});
    key.add("phase", "fp32");
    add_schedule(key, "fp32_train", options_.fp32_train);
    return key;
}

train::CacheKey ExperimentEnv::quantized_cache_key(std::size_t bits_w,
                                                   std::size_t bits_x) const {
    std::ostringstream legacy;
    legacy << base_key() << "_q_w" << bits_w << "_x" << bits_x;
    train::CacheKey key;
    key.label(legacy.str()).legacy(legacy.str());
    key.add("schema", "amsnet-ckpt-key-v1");
    key.add("parent", fp32_cache_key().hex());
    key.add("phase", "quant");
    key.add("bits_w", bits_w);
    key.add("bits_x", bits_x);
    add_schedule(key, "retrain", options_.retrain);
    return key;
}

train::CacheKey ExperimentEnv::ams_cache_key(std::size_t bits_w, std::size_t bits_x,
                                             const vmac::VmacConfig& vmac_cfg,
                                             const std::vector<models::LayerGroup>& frozen,
                                             const std::string& key_tag) const {
    std::ostringstream legacy;
    legacy << base_key() << "_ams_w" << bits_w << "_x" << bits_x << "_enob" << vmac_cfg.enob
           << "_nm" << vmac_cfg.nmult;
    if (!key_tag.empty()) legacy << "_b" << key_tag;
    for (models::LayerGroup g : frozen) legacy << "_f" << static_cast<int>(g);

    train::CacheKey key;
    key.label(legacy.str()).legacy(legacy.str());
    key.add("schema", "amsnet-ckpt-key-v1");
    key.add("parent", quantized_cache_key(bits_w, bits_x).hex());
    key.add("phase", "ams");
    key.add("bits_w", bits_w);
    key.add("bits_x", bits_x);
    key.add("vmac.enob", vmac_cfg.enob);
    key.add("vmac.nmult", vmac_cfg.nmult);
    key.add("vmac.accumulation",
            vmac_cfg.accumulation == vmac::Accumulation::kSum ? "sum" : "avg");
    key.add("backend", key_tag.empty() ? std::string("default") : key_tag);
    std::ostringstream frozen_tag;
    for (models::LayerGroup g : frozen) frozen_tag << static_cast<int>(g) << ",";
    key.add("frozen", frozen_tag.str());
    add_schedule(key, "retrain", options_.retrain);
    return key;
}

TensorMap ExperimentEnv::train_from(const TensorMap* init_state,
                                    const models::LayerCommon& common,
                                    const train::TrainOptions& train_opts,
                                    const std::vector<models::LayerGroup>& frozen,
                                    const std::string& phase_name) {
    auto model = make_model(common);
    if (init_state != nullptr) model->load_state("", *init_state);
    for (models::LayerGroup g : frozen) model->set_group_frozen(g, true);

    train::TrainOptions opts = train_opts;
    if (options_.verbose) {
        opts.on_epoch = [&phase_name](std::size_t epoch, double loss, double acc) {
            std::cerr << "[" << phase_name << "] epoch " << epoch << " loss " << loss
                      << " val top-1 " << acc << "\n";
        };
    }
    const train::TrainResult result =
        fit(*model, dataset_.train_images(), dataset_.train_labels(), dataset_.val_images(),
            dataset_.val_labels(), opts);
    return result.best_state;
}

TensorMap ExperimentEnv::fp32_state() {
    return train::cached_state(options_.cache_dir, fp32_cache_key(), [this] {
        return train_from(nullptr, fp32_common(), options_.fp32_train, {}, "fp32");
    });
}

TensorMap ExperimentEnv::quantized_state(std::size_t bits_w, std::size_t bits_x) {
    return train::cached_state(
        options_.cache_dir, quantized_cache_key(bits_w, bits_x), [this, bits_w, bits_x] {
            const TensorMap fp32 = fp32_state();
            return train_from(&fp32, quant_common(bits_w, bits_x), options_.retrain, {},
                              "quant_w" + std::to_string(bits_w) + "x" +
                                  std::to_string(bits_x));
        });
}

TensorMap ExperimentEnv::ams_retrained_state(std::size_t bits_w, std::size_t bits_x,
                                             const vmac::VmacConfig& vmac_cfg,
                                             const std::vector<models::LayerGroup>& frozen,
                                             const std::string& key_tag,
                                             const vmac::DeviceProfile& device) {
    if (device.active() && key_tag.empty()) {
        // A silent key collision with the pure-Gaussian lineage would
        // serve chip-retrained weights to chip-free callers (and vice
        // versa) — refuse rather than corrupt the cache.
        throw std::invalid_argument(
            "ams_retrained_state: an active DeviceProfile requires a key_tag "
            "encoding it (e.g. BackendOptions::str())");
    }
    return train::cached_state(
        options_.cache_dir, ams_cache_key(bits_w, bits_x, vmac_cfg, frozen, key_tag),
        [this, bits_w, bits_x, &vmac_cfg, &frozen, &device] {
            const TensorMap quant = quantized_state(bits_w, bits_x);
            return train_from(&quant,
                              ams_common(bits_w, bits_x, vmac_cfg,
                                         vmac::InjectionMode::kLumpedGaussian, device),
                              options_.retrain, frozen,
                              "ams_enob" + std::to_string(vmac_cfg.enob));
        });
}

train::EvalResult ExperimentEnv::evaluate_state(const TensorMap& state,
                                                const models::LayerCommon& common,
                                                runtime::EvalContext* ctx) {
    auto model = make_model(common);
    model->load_state("", state);
    return train::evaluate_top1(*model, dataset_.val_images(), dataset_.val_labels(),
                                options_.batch_size, options_.eval_passes, ctx);
}

ExperimentEnv::EnobSweepPoint ExperimentEnv::compute_enob_point(
    std::size_t bits_w, std::size_t bits_x, double enob, const EnobSweepOptions& sweep,
    const TensorMap& quant, runtime::EvalContext* ctx) {
    char tag[runtime::trace::Event::kTagCapacity + 1];
    tag[0] = '\0';
    if (runtime::metrics::spans_enabled()) {
        std::snprintf(tag, sizeof(tag), "enob=%.3g", enob);
    }
    runtime::trace::Span point_span("ams_enob_sweep.point", tag);
    vmac::VmacConfig cfg;
    cfg.enob = enob;
    cfg.nmult = sweep.nmult;
    EnobSweepPoint point;
    point.enob = enob;

    // Map the grid resolution through the hardware backend: the
    // injected network-level error uses the backend's equivalent
    // monolithic ENOB (Eq. 2 equivalence). The default bit-exact
    // backend keeps the historical identity mapping and keys.
    std::string key_tag;
    const vmac::DeviceProfile& device = sweep.backend.variation;
    if (sweep.backend.kind == vmac::BackendKind::kBitExact && !device.active()) {
        point.effective_enob = enob;
    } else {
        vmac::BackendOptions bopts = sweep.backend;
        vmac::VmacConfig backend_cfg = cfg;
        backend_cfg.bits_w = bits_w;
        backend_cfg.bits_x = bits_x;
        if (bopts.kind == vmac::BackendKind::kPartitioned) {
            bopts.partition.enob_partial = enob;
        }
        // The (possibly variation-decorated) backend reports the composed
        // equivalent ENOB — the figure the reports carry.
        const auto backend = vmac::make_backend(backend_cfg, sweep.analog, bopts);
        point.effective_enob =
            std::clamp(backend->effective_enob(sweep.backend_ref_chunks), 0.5, 32.0);
        key_tag = bopts.str();
        if (device.active()) {
            // The injected *stochastic* Gaussian uses the bare datapath's
            // equivalent only: the chip statics (offset field, drift
            // gain) are applied explicitly by the injectors' device
            // pre-pass, so folding them into the Gaussian too would
            // count them twice.
            vmac::BackendOptions bare = bopts;
            bare.variation = {};
            const auto inner = vmac::make_backend(backend_cfg, sweep.analog, bare);
            cfg.enob = std::clamp(inner->effective_enob(sweep.backend_ref_chunks), 0.5, 32.0);
        } else {
            cfg.enob = point.effective_enob;
        }
    }

    const auto common = [&] {
        return ams_common(bits_w, bits_x, cfg, vmac::InjectionMode::kLumpedGaussian, device);
    };
    if (sweep.eval_only) {
        point.eval_only = evaluate_state(quant, common(), ctx);
    }
    if (sweep.retrain) {
        const TensorMap state = ams_retrained_state(bits_w, bits_x, cfg, {}, key_tag, device);
        point.retrained = evaluate_state(state, common(), ctx);
    }
    return point;
}

std::vector<ExperimentEnv::EnobSweepPoint> ExperimentEnv::ams_enob_sweep(
    std::size_t bits_w, std::size_t bits_x, const std::vector<double>& enobs,
    const EnobSweepOptions& sweep) {
    runtime::trace::Span sweep_span("ams_enob_sweep");
    // Materialize the shared prerequisite chain (fp32 -> quantized) once,
    // before fanning out, so points don't duplicate the common training.
    const TensorMap quant = [&] {
        runtime::trace::Span prereq_span("ams_enob_sweep.prerequisites");
        return quantized_state(bits_w, bits_x);
    }();

    // Grain 1: each ENOB point is one unit of work — a full retrain plus
    // multi-pass evaluation — and the pool balances them by stealing.
    // Every point builds its own models from fixed seeds and writes only
    // its own slot, so the sweep result is independent of scheduling.
    std::vector<EnobSweepPoint> points(enobs.size());
    runtime::parallel_for(0, enobs.size(), 1, [&](std::size_t p_begin, std::size_t p_end) {
        // One evaluation context per worker invocation: its arenas warm up
        // on the first point and are rewound (not freed) between batches,
        // so every later point in the chunk evaluates allocation-free.
        runtime::EvalContext ctx;
        for (std::size_t p = p_begin; p < p_end; ++p) {
            points[p] = compute_enob_point(bits_w, bits_x, enobs[p], sweep, quant, &ctx);
        }
    });
    return points;
}

}  // namespace ams::core
