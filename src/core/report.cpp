#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ams::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
            if (i + 1 != cells.size()) os << "  ";
        }
        os << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (widths.size() - 1);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
}

std::string fmt_fixed(double value, int decimals) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string fmt_pct(double fraction, int decimals) {
    return fmt_fixed(fraction * 100.0, decimals) + "%";
}

std::string fmt_mean_std(double mean, double stddev, int decimals) {
    return fmt_fixed(mean, decimals) + " +/- " + fmt_fixed(stddev, decimals);
}

std::string fmt_energy_fj(double femtojoules) {
    if (femtojoules >= 1000.0) {
        return fmt_fixed(femtojoules / 1000.0, 2) + " pJ";
    }
    return fmt_fixed(femtojoules, 1) + " fJ";
}

void print_banner(std::ostream& os, const std::string& title, const std::string& reference) {
    os << '\n' << std::string(72, '=') << '\n';
    os << title << '\n';
    os << "Paper reference: " << reference << '\n';
    os << std::string(72, '=') << "\n\n";
}

}  // namespace ams::core
