#include "quant/quantized_view.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "quant/dorefa.hpp"
#include "runtime/simd.hpp"

namespace ams::quant {

namespace {

/// Nearest integer code for one value: lround(x * levels) clamped to the
/// representable range. For x already on the grid (x == k / levels) the
/// product re-rounds to exactly k because the relative error of the
/// stored quotient is far below half a code step.
long encode_one(float x, float n, long lo, long hi) {
    return std::clamp(std::lround(x * n), lo, hi);
}

}  // namespace

bool grid_fits_8bit(const QuantGrid& grid) {
    return grid.levels <= (grid.is_signed ? std::size_t{127} : std::size_t{255});
}

// The three bulk encoders below dispatch through the SIMD layer (the
// executor encodes whole input tensors per int conv step, so this is a
// hot loop). Every simd arm realizes exactly clamp(lround(x * n), ..)
// — see runtime/simd.hpp — so codes stay bit-identical across arms.

void encode_unit_u8(const float* values, std::size_t n, std::size_t levels, std::uint8_t* out) {
    const float scale = checked_levels(levels, "encode_unit_u8");
    simd::encode_unit_u8(values, out, n, scale);
}

void encode_signed_i16(const float* values, std::size_t n, std::size_t levels,
                       std::int16_t* out) {
    const float scale = checked_levels(levels, "encode_signed_i16");
    simd::encode_signed_i16(values, out, n, scale);
}

void encode_unit_u16(const float* values, std::size_t n, std::size_t levels,
                     std::int16_t* out) {
    const float scale = checked_levels(levels, "encode_unit_u16");
    simd::encode_unit_u16(values, out, n, scale);
}

QuantizedTensor::QuantizedTensor(const float* values, std::size_t n, QuantGrid grid,
                                 bool force_wide)
    : grid_(grid), size_(n) {
    (void)checked_levels(grid.levels, "QuantizedTensor");
    if (grid.levels > 32767) {
        throw std::invalid_argument("QuantizedTensor: levels exceed 16-bit code range");
    }
    if (!force_wide && grid_fits_8bit(grid_)) {
        narrow_.resize(n);
        if (grid_.is_signed) {
            const float scale = static_cast<float>(grid_.levels);
            const long hi = static_cast<long>(grid_.levels);
            auto* codes = reinterpret_cast<std::int8_t*>(narrow_.data());
            for (std::size_t i = 0; i < n; ++i) {
                codes[i] = static_cast<std::int8_t>(encode_one(values[i], scale, -hi, hi));
            }
        } else {
            encode_unit_u8(values, n, grid_.levels, narrow_.data());
        }
    } else {
        wide_.resize(n);
        if (grid_.is_signed) {
            encode_signed_i16(values, n, grid_.levels, wide_.data());
        } else {
            encode_unit_u16(values, n, grid_.levels, wide_.data());
        }
    }
}

QuantizedView QuantizedTensor::view() const {
    QuantizedView v;
    v.grid = grid_;
    v.size = size_;
    if (!wide_.empty()) {
        v.i16 = wide_.data();
    } else if (grid_.is_signed) {
        v.i8 = reinterpret_cast<const std::int8_t*>(narrow_.data());
    } else {
        v.u8 = narrow_.data();
    }
    return v;
}

void QuantizedTensor::dequantize_into(float* out) const {
    // Divide rather than multiply by scale(): the canonical grid points
    // are round(x * n) / n (dorefa.cpp), and only correctly-rounded
    // division reproduces them bit-for-bit — k * (1/n) can be off by one
    // ulp for grids like n = 127.
    const float n = static_cast<float>(grid_.levels);
    const QuantizedView v = view();
    if (v.i16 != nullptr) {
        for (std::size_t i = 0; i < size_; ++i) out[i] = static_cast<float>(v.i16[i]) / n;
    } else if (v.i8 != nullptr) {
        for (std::size_t i = 0; i < size_; ++i) out[i] = static_cast<float>(v.i8[i]) / n;
    } else {
        for (std::size_t i = 0; i < size_; ++i) out[i] = static_cast<float>(v.u8[i]) / n;
    }
}

QuantizedTensor dorefa_quantize_weights_q(const Tensor& w, std::size_t bits) {
    const std::size_t levels = magnitude_levels(bits);  // throws outside [2, 31]
    std::vector<float> q(w.size());
    dorefa_quantize_weights_into(w, bits, q.data());
    return QuantizedTensor(q.data(), q.size(), QuantGrid{levels, /*is_signed=*/true});
}

}  // namespace ams::quant
