// Quantized layer wrappers implementing Fig. 3 of the paper:
//   PreviousLayer -> [ReLU-1 -> quantize to BX bits]  (QuantAct)
//                 -> [conv with weights quantized to BW, mapped to [-1,1]]
//                    (QuantConv2d / QuantLinear)
//                 -> AMS error injection (ams::vmac::ErrorInjector)
//                 -> BatchNorm -> NextLayer
// Gradients flow through every quantizer via the straight-through
// estimator; batch-norm parameters stay full precision (paper Sec. 2).
#pragma once

#include <memory>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "quant/dorefa.hpp"

namespace ams::quant {

/// The "quantized ReLU" of Fig. 3: y = quantize_BX(clamp(x, 0, 1)).
///
/// The clip at 1 is what bounds the next layer's input activations, making
/// further input rescaling unnecessary after the first layer. The STE
/// passes gradients where 0 < x < 1. bits == kFloatBits degenerates to a
/// plain clipped ReLU.
class QuantAct : public nn::Module {
public:
    /// Throws std::invalid_argument for bits < 2.
    explicit QuantAct(std::size_t bits);

    Tensor forward(const Tensor& input) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string name() const override { return "QuantAct"; }
    [[nodiscard]] std::size_t bits() const { return bits_; }

private:
    std::size_t bits_;
    Tensor cached_input_;
};

/// First-layer input conditioning (paper Sec. 2): rescale inputs by the
/// maximum input activation magnitude so they lie in [-1, 1], then
/// quantize (signed) to BX bits. The scale is fixed at construction from
/// dataset statistics.
class QuantInput : public nn::Module {
public:
    /// Throws std::invalid_argument if max_abs_input <= 0 or bits < 2.
    QuantInput(float max_abs_input, std::size_t bits);

    Tensor forward(const Tensor& input) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string name() const override { return "QuantInput"; }
    [[nodiscard]] float max_abs_input() const { return scale_; }
    [[nodiscard]] std::size_t bits() const { return bits_; }

private:
    float scale_;
    std::size_t bits_;
    Tensor cached_scaled_;
};

/// Convolution whose forward pass runs with DoReFa-quantized weights while
/// the optimizer updates the latent FP32 weights (STE).
class QuantConv2d : public nn::Module {
public:
    /// bits_w == kFloatBits keeps the convolution full precision.
    QuantConv2d(const nn::Conv2dOptions& opts, std::size_t bits_w, Rng& rng);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<nn::Parameter*> parameters() override { return conv_.parameters(); }
    void set_training(bool training) override {
        nn::Module::set_training(training);
        conv_.set_training(training);
    }
    [[nodiscard]] std::string name() const override { return "QuantConv2d"; }

    void collect_state(const std::string& prefix, TensorMap& out) const override {
        conv_.collect_state(prefix, out);
    }
    void load_state(const std::string& prefix, const TensorMap& in) override {
        conv_.load_state(prefix, in);
    }

    [[nodiscard]] nn::Conv2d& conv() { return conv_; }
    [[nodiscard]] const nn::Conv2d& conv() const { return conv_; }
    [[nodiscard]] std::size_t bits_w() const { return bits_w_; }
    [[nodiscard]] std::size_t n_tot() const { return conv_.n_tot(); }

private:
    nn::Conv2d conv_;
    std::size_t bits_w_;
    Tensor ste_scale_;
};

/// Fully-connected analogue of QuantConv2d (the FC head of ResNet).
class QuantLinear : public nn::Module {
public:
    QuantLinear(std::size_t in_features, std::size_t out_features, std::size_t bits_w, Rng& rng,
                bool bias = true);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<nn::Parameter*> parameters() override { return linear_.parameters(); }
    void set_training(bool training) override {
        nn::Module::set_training(training);
        linear_.set_training(training);
    }
    [[nodiscard]] std::string name() const override { return "QuantLinear"; }

    void collect_state(const std::string& prefix, TensorMap& out) const override {
        linear_.collect_state(prefix, out);
    }
    void load_state(const std::string& prefix, const TensorMap& in) override {
        linear_.load_state(prefix, in);
    }

    [[nodiscard]] nn::Linear& linear() { return linear_; }
    [[nodiscard]] std::size_t bits_w() const { return bits_w_; }
    [[nodiscard]] std::size_t n_tot() const { return linear_.n_tot(); }

private:
    nn::Linear linear_;
    std::size_t bits_w_;
    Tensor ste_scale_;
};

}  // namespace ams::quant
