// DoReFa-style quantization primitives (Zhou et al., arXiv 2016), as used
// by Distiller and by the paper (Sec. 2):
//   - weights:     tanh-normalize to [-1, 1], then quantize the magnitude
//                  on the sign-magnitude grid (so 0 stays representable,
//                  per the paper's sign-magnitude operand convention)
//   - activations: a_q = quantize(clip(a, 0, 1))
// Quantization uses uniform levels; gradients pass through the rounding
// via the straight-through estimator (STE). Following the paper's
// sign-magnitude convention, a B-bit signed operand carries B-1 magnitude
// bits, so the quantization step for a unit-range operand is
// 1 / (2^(B-1) - 1).
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace ams::quant {

/// Bitwidth treated as "no quantization" (the FP32 baseline).
inline constexpr std::size_t kFloatBits = 32;

/// Number of uniform levels spanning [0, 1] for a B-bit signed
/// sign-magnitude operand (B-1 magnitude bits): 2^(B-1) - 1 steps.
/// Throws std::invalid_argument for bits < 2 (a sign bit alone cannot
/// represent magnitude).
[[nodiscard]] std::size_t magnitude_levels(std::size_t bits);

/// Validates a grid level count and returns it as the float the grid math
/// needs. Every entry point that takes `levels` funnels through this one
/// check. Throws std::invalid_argument("<where>: levels must be > 0").
[[nodiscard]] float checked_levels(std::size_t levels, const char* where);

/// Uniform quantization of x in [0,1] to `levels` steps:
/// round(levels * x) / levels. Values outside [0,1] are clamped first.
[[nodiscard]] float quantize_unit(float x, std::size_t levels);

/// Applies quantize_unit elementwise.
void quantize_unit_inplace(Tensor& t, std::size_t levels);

/// Result of the DoReFa weight transform.
struct DorefaWeights {
    Tensor quantized;  ///< w_q in [-1, 1]
    Tensor ste_scale;  ///< elementwise d(w_q)/d(w) under the STE
};

/// Full DoReFa weight transform for a latent FP32 weight tensor.
/// For bits == kFloatBits the transform is the identity (scale = 1).
/// Throws std::invalid_argument for bits < 2.
[[nodiscard]] DorefaWeights dorefa_quantize_weights(const Tensor& w, std::size_t bits);

/// Eval-path variant: writes only the quantized weights (no STE scale)
/// into caller-provided storage of w.size() floats, allocating nothing.
/// Values match dorefa_quantize_weights(...).quantized bit-for-bit.
void dorefa_quantize_weights_into(const Tensor& w, std::size_t bits, float* out_q);

/// DoReFa activation quantization: quantize_unit over [0,1] with the
/// sign-magnitude level count for `bits`. Identity for kFloatBits.
[[nodiscard]] Tensor dorefa_quantize_activations(const Tensor& a, std::size_t bits);

}  // namespace ams::quant
