// Integer carrier for the DoReFa grids.
//
// Every quantized value in the network lives on a uniform grid
// k / levels with zero_point = 0: weight magnitudes and QuantAct
// activations span [0, 1] (unsigned codes), QuantInput activations span
// [-1, 1] (signed codes). Because each grid point is exactly
// float(k) / float(levels) and IEEE division is exact-rounded and
// sign-symmetric, the integer code round-trips bit-for-bit:
//
//   encode(float(k) / float(levels)) == k   and
//   decode(encode(x)) == x                  for any on-grid x.
//
// QuantizedView is the non-owning (codes, grid) pair the packed integer
// GEMM path consumes; QuantizedTensor owns the code storage and is what
// the compiler keeps per weight tensor. Both carry the dequantization
// scale 1 / levels so the int32 accumulator of a code×code GEMM
// converts back with one multiply:
//
//   acc = sum_k a_k * b_k   =>   fp32 = float(acc) * (sw * sx).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ams::quant {

/// One uniform DoReFa grid: values k / levels, zero_point == 0 always
/// (the sign-magnitude convention keeps 0 on-grid), signed codes iff the
/// value range is [-1, 1] rather than [0, 1].
struct QuantGrid {
    std::size_t levels = 0;  ///< magnitude steps; max |code| == levels
    bool is_signed = false;  ///< [-1,1] signed codes vs [0,1] unsigned

    /// Dequantization scale: value = float(code) * scale().
    [[nodiscard]] float scale() const { return 1.0f / static_cast<float>(levels); }

    [[nodiscard]] bool operator==(const QuantGrid& other) const {
        return levels == other.levels && is_signed == other.is_signed;
    }
};

/// Non-owning view of integer codes on a grid. Exactly one of the code
/// pointers is non-null, chosen by the producer to fit `grid.levels`:
/// u8 for unsigned grids with levels <= 255, i8 for signed grids with
/// levels <= 127, i16 otherwise (levels <= 32767).
struct QuantizedView {
    QuantGrid grid;
    std::size_t size = 0;
    const std::uint8_t* u8 = nullptr;
    const std::int8_t* i8 = nullptr;
    const std::int16_t* i16 = nullptr;

    [[nodiscard]] bool wide() const { return i16 != nullptr; }
};

/// Owning code storage for one tensor's worth of grid codes. Narrow
/// storage (8-bit) is used whenever the grid fits; the view() accessor
/// hands out the matching pointer.
class QuantizedTensor {
public:
    QuantizedTensor() = default;

    /// Encodes `n` on-grid float values (k / levels). Values are clamped
    /// to the representable code range, so off-grid inputs still encode
    /// to the nearest code; on-grid inputs round-trip bit-exactly.
    /// `force_wide` keeps i16 storage even when the grid fits 8-bit
    /// codes — the int16 GEMM path needs i16 operands regardless.
    QuantizedTensor(const float* values, std::size_t n, QuantGrid grid,
                    bool force_wide = false);

    [[nodiscard]] const QuantGrid& grid() const { return grid_; }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] QuantizedView view() const;

    /// Writes float(code) / float(levels) for every code into `out`
    /// (size() floats) — the bit-exact inverse of encoding on-grid
    /// values (the canonical grid realization is division, dorefa.cpp).
    void dequantize_into(float* out) const;

private:
    QuantGrid grid_{};
    std::size_t size_ = 0;
    std::vector<std::uint8_t> narrow_;  ///< u8 codes (reused as i8 bits when signed)
    std::vector<std::int16_t> wide_;    ///< i16 codes when levels > 8-bit range
};

/// True when `levels` codes of this signedness fit 8-bit storage.
[[nodiscard]] bool grid_fits_8bit(const QuantGrid& grid);

/// Encode helpers shared by the compiler (weights, once) and the
/// executor (activations, per batch). Inputs must lie in the grid's
/// value range; each writes n codes.
void encode_unit_u8(const float* values, std::size_t n, std::size_t levels, std::uint8_t* out);
void encode_signed_i16(const float* values, std::size_t n, std::size_t levels, std::int16_t* out);
void encode_unit_u16(const float* values, std::size_t n, std::size_t levels, std::int16_t* out);

/// DoReFa weight transform straight to codes: bit-identical to encoding
/// the output of dorefa_quantize_weights_into on the signed grid for
/// `bits`. Throws for bits < 2 or bits >= kFloatBits (no grid exists).
[[nodiscard]] QuantizedTensor dorefa_quantize_weights_q(const Tensor& w, std::size_t bits);

}  // namespace ams::quant
