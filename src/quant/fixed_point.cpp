#include "quant/fixed_point.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ams::quant {

SignMagCodec::SignMagCodec(std::size_t bits) : bits_(bits) {
    if (bits < 2 || bits > 24) {
        throw std::invalid_argument("SignMagCodec: bits must be in [2, 24]");
    }
    full_scale_ = (std::uint32_t{1} << (bits - 1)) - 1;
}

SignMagCode SignMagCodec::encode(double x) const {
    const double clamped = std::clamp(x, -1.0, 1.0);
    const double scaled = std::fabs(clamped) * static_cast<double>(full_scale_);
    const auto mag = static_cast<std::uint32_t>(std::llround(scaled));
    SignMagCode code;
    code.magnitude = std::min(mag, full_scale_);
    code.negative = (clamped < 0.0) && code.magnitude != 0;
    return code;
}

double SignMagCodec::decode(const SignMagCode& code) const {
    if (code.magnitude > full_scale_) {
        throw std::invalid_argument("SignMagCodec::decode: magnitude exceeds full scale");
    }
    const double v = static_cast<double>(code.magnitude) / static_cast<double>(full_scale_);
    return code.negative ? -v : v;
}

std::vector<SignMagCode> SignMagCodec::encode_all(const std::vector<double>& xs) const {
    std::vector<SignMagCode> out;
    out.reserve(xs.size());
    for (double x : xs) out.push_back(encode(x));
    return out;
}

}  // namespace ams::quant
