// Sign-magnitude fixed-point codec.
//
// The paper's VMAC cell consumes BW-bit weights and BX-bit activations in
// sign-magnitude representation (one sign bit + B-1 magnitude bits
// spanning [0, 1]). This codec converts between that digital encoding and
// the real values the rest of the library works with; the bit-exact VMAC
// simulator (ams::vmac::VmacCell) operates on these codes.
#pragma once

#include <cstdint>
#include <vector>

namespace ams::quant {

/// A sign-magnitude code word: value = (negative ? -1 : +1) * magnitude / full_scale.
struct SignMagCode {
    bool negative = false;
    std::uint32_t magnitude = 0;
};

/// Sign-magnitude codec with B-1 magnitude bits.
class SignMagCodec {
public:
    /// Throws std::invalid_argument unless 2 <= bits <= 24.
    explicit SignMagCodec(std::size_t bits);

    [[nodiscard]] std::size_t bits() const { return bits_; }
    /// Largest representable magnitude code: 2^(bits-1) - 1.
    [[nodiscard]] std::uint32_t full_scale() const { return full_scale_; }
    /// Quantization step: 1 / full_scale().
    [[nodiscard]] double lsb() const { return 1.0 / static_cast<double>(full_scale_); }

    /// Encodes x (clamped to [-1, 1]) to the nearest representable code.
    /// -0.0 encodes as non-negative zero.
    [[nodiscard]] SignMagCode encode(double x) const;

    /// Decodes a code to its real value in [-1, 1].
    /// Throws std::invalid_argument if magnitude exceeds full_scale().
    [[nodiscard]] double decode(const SignMagCode& code) const;

    /// Round-trip: the representable value nearest to x.
    [[nodiscard]] double quantize(double x) const { return decode(encode(x)); }

    /// Encodes a span of values.
    [[nodiscard]] std::vector<SignMagCode> encode_all(const std::vector<double>& xs) const;

private:
    std::size_t bits_;
    std::uint32_t full_scale_;
};

}  // namespace ams::quant
