#include "quant/quant_modules.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/simd.hpp"

namespace ams::quant {

QuantAct::QuantAct(std::size_t bits) : bits_(bits) {
    if (bits < 2) throw std::invalid_argument("QuantAct: bits must be >= 2");
}

Tensor QuantAct::forward(const Tensor& input) {
    cached_input_ = input;
    if (bits_ >= kFloatBits) {
        Tensor out = input;
        simd::clamp(out.data(), out.data(), out.size(), 0.0f, 1.0f);
        return out;
    }
    const std::size_t levels = magnitude_levels(bits_);
    Tensor out = input;
    quantize_unit_inplace(out, levels);
    return out;
}

Tensor QuantAct::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);  // backward needs cached_input_
    Tensor out = nn::arena_output(ctx, input.shape());
    if (bits_ >= kFloatBits) {
        simd::clamp(input.data(), out.data(), out.size(), 0.0f, 1.0f);
        return out;
    }
    const std::size_t levels = magnitude_levels(bits_);
    simd::quantize_unit(input.data(), out.data(), out.size(), static_cast<float>(levels));
    return out;
}

Tensor QuantAct::backward(const Tensor& grad_output) {
    check_same_shape(grad_output, cached_input_, "QuantAct::backward");
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        const float x = cached_input_[i];
        if (x <= 0.0f || x >= 1.0f) grad[i] = 0.0f;
    }
    return grad;
}

QuantInput::QuantInput(float max_abs_input, std::size_t bits)
    : scale_(max_abs_input), bits_(bits) {
    if (max_abs_input <= 0.0f) {
        throw std::invalid_argument("QuantInput: max_abs_input must be positive");
    }
    if (bits < 2) throw std::invalid_argument("QuantInput: bits must be >= 2");
}

Tensor QuantInput::forward(const Tensor& input) {
    Tensor scaled = input;
    const float inv = 1.0f / scale_;
    simd::scale_clamp(scaled.data(), scaled.data(), scaled.size(), inv, -1.0f, 1.0f);
    cached_scaled_ = scaled;
    if (bits_ >= kFloatBits) return scaled;
    // Signed quantization: quantize |x| on the magnitude grid, restore sign.
    const std::size_t levels = magnitude_levels(bits_);
    Tensor out = scaled;
    simd::quantize_signed(out.data(), out.data(), out.size(), static_cast<float>(levels));
    return out;
}

Tensor QuantInput::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);  // backward needs cached_scaled_
    Tensor out = nn::arena_output(ctx, input.shape());
    const float inv = 1.0f / scale_;
    simd::scale_clamp(input.data(), out.data(), out.size(), inv, -1.0f, 1.0f);
    if (bits_ >= kFloatBits) return out;
    const std::size_t levels = magnitude_levels(bits_);
    simd::quantize_signed(out.data(), out.data(), out.size(), static_cast<float>(levels));
    return out;
}

Tensor QuantInput::backward(const Tensor& grad_output) {
    check_same_shape(grad_output, cached_scaled_, "QuantInput::backward");
    Tensor grad = grad_output;
    const float inv = 1.0f / scale_;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        // STE through the rounding; zero where the clamp saturated.
        grad[i] = (std::fabs(cached_scaled_[i]) >= 1.0f) ? 0.0f : grad[i] * inv;
    }
    return grad;
}

QuantConv2d::QuantConv2d(const nn::Conv2dOptions& opts, std::size_t bits_w, Rng& rng)
    : conv_(opts, rng), bits_w_(bits_w) {
    if (bits_w < 2) throw std::invalid_argument("QuantConv2d: bits_w must be >= 2");
}

Tensor QuantConv2d::forward(const Tensor& input) {
    if (bits_w_ >= kFloatBits) {
        conv_.clear_effective_weight();
        ste_scale_ = Tensor();
        return conv_.forward(input);
    }
    DorefaWeights dq = dorefa_quantize_weights(conv_.weight().value, bits_w_);
    ste_scale_ = std::move(dq.ste_scale);
    conv_.set_effective_weight(std::move(dq.quantized));
    return conv_.forward(input);
}

Shape QuantConv2d::plan(const Shape& in, runtime::EvalContext& ctx) {
    if (bits_w_ < kFloatBits) {
        // Quantized-weight buffer, reused every pass.
        (void)ctx.reserve_scratch(this, 0, conv_.weight().value.size());
    }
    return conv_.plan(in, ctx);
}

Tensor QuantConv2d::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);  // STE bookkeeping lives on that path
    if (bits_w_ >= kFloatBits) {
        conv_.clear_effective_weight();
        return conv_.forward(input, ctx);
    }
    const Tensor& w = conv_.weight().value;
    float* wq = ctx.reserve_scratch(this, 0, w.size());
    dorefa_quantize_weights_into(w, bits_w_, wq);
    conv_.set_effective_weight(Tensor::borrowed(w.shape(), wq));
    return conv_.forward(input, ctx);
}

Tensor QuantConv2d::backward(const Tensor& grad_output) {
    if (ste_scale_.empty()) {
        return conv_.backward(grad_output);
    }
    // conv_.backward accumulates dL/d(w_q) into weight().grad. Rescale only
    // the newly added contribution by d(w_q)/dw so earlier accumulation
    // (e.g. from other minibatch chunks) is preserved.
    Tensor before = conv_.weight().grad;
    Tensor grad_input = conv_.backward(grad_output);
    Tensor& wg = conv_.weight().grad;
    for (std::size_t i = 0; i < wg.size(); ++i) {
        wg[i] = before[i] + (wg[i] - before[i]) * ste_scale_[i];
    }
    return grad_input;
}

QuantLinear::QuantLinear(std::size_t in_features, std::size_t out_features, std::size_t bits_w,
                         Rng& rng, bool bias)
    : linear_(in_features, out_features, rng, bias), bits_w_(bits_w) {
    if (bits_w < 2) throw std::invalid_argument("QuantLinear: bits_w must be >= 2");
}

Tensor QuantLinear::forward(const Tensor& input) {
    if (bits_w_ >= kFloatBits) {
        linear_.clear_effective_weight();
        ste_scale_ = Tensor();
        return linear_.forward(input);
    }
    DorefaWeights dq = dorefa_quantize_weights(linear_.weight().value, bits_w_);
    ste_scale_ = std::move(dq.ste_scale);
    linear_.set_effective_weight(std::move(dq.quantized));
    return linear_.forward(input);
}

Shape QuantLinear::plan(const Shape& in, runtime::EvalContext& ctx) {
    if (bits_w_ < kFloatBits) {
        (void)ctx.reserve_scratch(this, 0, linear_.weight().value.size());
    }
    return linear_.plan(in, ctx);
}

Tensor QuantLinear::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);
    if (bits_w_ >= kFloatBits) {
        linear_.clear_effective_weight();
        return linear_.forward(input, ctx);
    }
    const Tensor& w = linear_.weight().value;
    float* wq = ctx.reserve_scratch(this, 0, w.size());
    dorefa_quantize_weights_into(w, bits_w_, wq);
    linear_.set_effective_weight(Tensor::borrowed(w.shape(), wq));
    return linear_.forward(input, ctx);
}

Tensor QuantLinear::backward(const Tensor& grad_output) {
    if (ste_scale_.empty()) {
        return linear_.backward(grad_output);
    }
    Tensor before = linear_.weight().grad;
    Tensor grad_input = linear_.backward(grad_output);
    Tensor& wg = linear_.weight().grad;
    for (std::size_t i = 0; i < wg.size(); ++i) {
        wg[i] = before[i] + (wg[i] - before[i]) * ste_scale_[i];
    }
    return grad_input;
}

}  // namespace ams::quant
