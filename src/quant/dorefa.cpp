#include "quant/dorefa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "runtime/simd.hpp"

namespace ams::quant {

std::size_t magnitude_levels(std::size_t bits) {
    if (bits < 2) {
        throw std::invalid_argument("magnitude_levels: need >= 2 bits (sign + magnitude)");
    }
    if (bits >= kFloatBits) {
        throw std::invalid_argument("magnitude_levels: bits >= 32 means no quantization");
    }
    return (std::size_t{1} << (bits - 1)) - 1;
}

float checked_levels(std::size_t levels, const char* where) {
    if (levels == 0) {
        throw std::invalid_argument(std::string(where) + ": levels must be > 0");
    }
    return static_cast<float>(levels);
}

float quantize_unit(float x, std::size_t levels) {
    const float n = checked_levels(levels, "quantize_unit");
    const float clamped = std::clamp(x, 0.0f, 1.0f);
    return std::round(clamped * n) / n;
}

void quantize_unit_inplace(Tensor& t, std::size_t levels) {
    const float n = checked_levels(levels, "quantize_unit_inplace");
    simd::quantize_unit(t.data(), t.data(), t.size(), n);
}

DorefaWeights dorefa_quantize_weights(const Tensor& w, std::size_t bits) {
    if (bits >= kFloatBits) {
        return DorefaWeights{w, Tensor(w.shape(), 1.0f)};
    }
    const std::size_t levels = magnitude_levels(bits);

    // max|tanh(w)| over the tensor; guards the degenerate all-zero case.
    float max_tanh = 0.0f;
    Tensor tanh_w(w.shape());
    for (std::size_t i = 0; i < w.size(); ++i) {
        tanh_w[i] = std::tanh(w[i]);
        max_tanh = std::max(max_tanh, std::fabs(tanh_w[i]));
    }
    if (max_tanh == 0.0f) max_tanh = 1.0f;

    DorefaWeights out{Tensor(w.shape()), Tensor(w.shape())};
    const float inv_max = 1.0f / max_tanh;
    const float n = static_cast<float>(levels);
    for (std::size_t i = 0; i < w.size(); ++i) {
        // Sign-magnitude grid: quantize |tanh(w)|/max on the B-1 magnitude
        // bits and restore the sign. Unlike the textbook DoReFa grid
        // (2 q(f(w)) - 1, which cannot represent 0 for odd level counts),
        // this matches the paper's sign-magnitude hardware exactly.
        const float unit = tanh_w[i] * inv_max;  // in [-1, 1]
        const float mag = std::round(std::fabs(unit) * n) / n;
        out.quantized[i] = std::copysign(mag, unit);
        // STE: d(w_q)/dw = (1 - tanh^2 w) / max|tanh w|, treating the max
        // and the rounding as constants.
        out.ste_scale[i] = (1.0f - tanh_w[i] * tanh_w[i]) / max_tanh;
    }
    return out;
}

void dorefa_quantize_weights_into(const Tensor& w, std::size_t bits, float* out_q) {
    if (bits >= kFloatBits) {
        for (std::size_t i = 0; i < w.size(); ++i) out_q[i] = w[i];
        return;
    }
    const std::size_t levels = magnitude_levels(bits);

    // Two passes recomputing tanh instead of storing it: std::tanh is
    // deterministic, so the result is bit-identical to the allocating
    // transform while needing no temporary.
    float max_tanh = 0.0f;
    for (std::size_t i = 0; i < w.size(); ++i) {
        max_tanh = std::max(max_tanh, std::fabs(std::tanh(w[i])));
    }
    if (max_tanh == 0.0f) max_tanh = 1.0f;

    const float inv_max = 1.0f / max_tanh;
    const float n = static_cast<float>(levels);
    for (std::size_t i = 0; i < w.size(); ++i) {
        const float unit = std::tanh(w[i]) * inv_max;  // in [-1, 1]
        const float mag = std::round(std::fabs(unit) * n) / n;
        out_q[i] = std::copysign(mag, unit);
    }
}

Tensor dorefa_quantize_activations(const Tensor& a, std::size_t bits) {
    if (bits >= kFloatBits) return a;
    Tensor out = a;
    quantize_unit_inplace(out, magnitude_levels(bits));
    return out;
}

}  // namespace ams::quant
