// Disk cache for trained model states.
//
// The experiment benches share expensive artifacts (the pretrained FP32
// network, the 8b/6b quantized retrained networks) through this cache so
// each is trained exactly once per workspace regardless of which bench
// runs first.
//
// Two key schemes coexist:
//  * content-addressed (preferred): a train::CacheKey hashing a canonical
//    serialization of every input that affects the state — model config,
//    quant bits, backend options, seeds, training schedule, and the
//    parent phase's hash. Distinct configs can never alias one file.
//  * legacy strings: the historical ad-hoc concatenation
//    ("mini_c10_..._enob4.5_nm8"). Kept for tests and one-off callers;
//    CacheKeys carry their legacy key so existing cache directories are
//    migrated in place on first lookup (load old file, store under the
//    content-hash name; the legacy file is left untouched).
//
// Durability contract: every write goes to a per-process temporary file
// in the cache directory and is published with an atomic rename, so
// concurrent writer processes and SIGKILLed training runs can never
// leave a torn entry under a final name. A truncated or corrupt entry
// (e.g. one written by a pre-atomic-rename build) is logged to stderr,
// counted (checkpoint_corrupt_recovered), and recomputed rather than
// failing the caller.
#pragma once

#include <functional>
#include <string>

#include "tensor/serialize.hpp"
#include "train/cache_key.hpp"

namespace ams::train {

/// Filesystem-safe encoding of a cache key.
[[nodiscard]] std::string sanitize_cache_key(const std::string& key);

/// Returns the state for `key`, producing and persisting it with
/// `produce` on a miss. `cache_dir` is created if absent. A corrupt cache
/// file is regenerated rather than propagated. Set the environment
/// variable AMSNET_NO_CACHE=1 to bypass reads (writes still happen).
[[nodiscard]] TensorMap cached_state(const std::string& cache_dir, const std::string& key,
                                     const std::function<TensorMap()>& produce);

/// Content-addressed variant. Lookup order: the content-hash file; then
/// (when `key.legacy_key()` is set) the legacy file, which on a hit is
/// re-persisted under the content-hash name (migration shim); then
/// `produce`. AMSNET_NO_CACHE=1 bypasses both disk reads but keeps the
/// in-process memo, which is keyed by the content hash — so unlike the
/// legacy scheme, a config change always re-produces.
[[nodiscard]] TensorMap cached_state(const std::string& cache_dir, const CacheKey& key,
                                     const std::function<TensorMap()>& produce);

/// Publishes `state` at `path` via temp-file + atomic rename. Exposed for
/// the sweep orchestrator's prerequisite seeding; throws
/// std::runtime_error on I/O failure (the temp file is removed).
void save_state_atomic(const std::string& path, const TensorMap& state);

/// Default cache directory: $AMSNET_CACHE_DIR or "amsnet_cache".
[[nodiscard]] std::string default_cache_dir();

}  // namespace ams::train
