// Disk cache for trained model states, keyed by an experiment string.
//
// The experiment benches share expensive artifacts (the pretrained FP32
// network, the 8b/6b quantized retrained networks) through this cache so
// each is trained exactly once per workspace regardless of which bench
// runs first. Keys should encode every input that affects the result
// (dataset seed, model config, bitwidths, training options).
#pragma once

#include <functional>
#include <string>

#include "tensor/serialize.hpp"

namespace ams::train {

/// Filesystem-safe encoding of a cache key.
[[nodiscard]] std::string sanitize_cache_key(const std::string& key);

/// Returns the state for `key`, producing and persisting it with
/// `produce` on a miss. `cache_dir` is created if absent. A corrupt cache
/// file is regenerated rather than propagated. Set the environment
/// variable AMSNET_NO_CACHE=1 to bypass reads (writes still happen).
[[nodiscard]] TensorMap cached_state(const std::string& cache_dir, const std::string& key,
                                     const std::function<TensorMap()>& produce);

/// Default cache directory: $AMSNET_CACHE_DIR or "amsnet_cache".
[[nodiscard]] std::string default_cache_dir();

}  // namespace ams::train
