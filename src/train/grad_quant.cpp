#include "train/grad_quant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "quant/dorefa.hpp"

namespace ams::train {

void quantize_gradient(Tensor& grad, std::size_t bits, Rng& rng) {
    if (bits < 2) throw std::invalid_argument("quantize_gradient: bits must be >= 2");
    if (bits >= quant::kFloatBits) return;
    const float max_abs = grad.abs_max();
    if (max_abs == 0.0f) return;

    const auto levels = static_cast<float>((std::size_t{1} << bits) - 1);
    const float inv_2max = 0.5f / max_abs;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        // Map to [0, 1], add the unbiasing dither, quantize, map back.
        const float unit = grad[i] * inv_2max + 0.5f;
        const float dither =
            static_cast<float>(rng.uniform(-0.5, 0.5)) / levels;
        const float q =
            std::round(std::clamp(unit + dither, 0.0f, 1.0f) * levels) / levels;
        grad[i] = 2.0f * max_abs * (q - 0.5f);
    }
}

void quantize_gradients(const std::vector<nn::Parameter*>& params, std::size_t bits,
                        Rng& rng) {
    for (nn::Parameter* p : params) {
        if (!p->frozen) quantize_gradient(p->grad, bits, rng);
    }
}

}  // namespace ams::train
