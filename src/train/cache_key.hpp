// Content-addressed cache keys for trained-model checkpoints.
//
// The historical cache keyed checkpoints by an ad-hoc concatenation of a
// few config fields ("mini_c10_..._enob4.5_nm8"). Anything the string
// forgot — training schedule, dataset noise, learning rate — silently
// aliased distinct experiments onto one cache entry, so a config change
// could reuse a stale checkpoint. A CacheKey instead hashes a *canonical
// serialization* of every input that affects the produced state: each
// field is appended as one "name=value\n" record (doubles rendered with
// 17 significant digits so the text round-trips the exact bits), and the
// 64-bit FNV-1a hash of that record stream names the cache file. Two
// keys collide only if every contributing field is identical.
//
// Keys compose: a phase whose initial weights come from another cached
// phase adds the parent's hash as a field ("parent=<hex>"), so an
// upstream config change re-keys the entire downstream lineage.
//
// The human-readable `label` is a filename prefix only — it is NOT part
// of the hash, and exists so a cache directory stays listable by eye
// ("...enob4.5_nm8-9f31c2d4a07b55e1.amsckpt").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ams::train {

/// 64-bit FNV-1a over `text` (the cache's one canonical hash).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// Lowercase 16-hex-digit rendering of a 64-bit hash.
[[nodiscard]] std::string hash_hex(std::uint64_t hash);

/// Builder for one content-addressed key. Append every field that
/// affects the produced artifact; field names must not contain '=' or
/// '\n' (values containing '\n' are rejected too — both would make the
/// canonical form ambiguous; std::invalid_argument).
class CacheKey {
public:
    /// Human-readable filename prefix (sanitized; not hashed).
    CacheKey& label(std::string_view text);

    /// Pre-content-hash key this entry was historically stored under;
    /// enables the one-time migration shim in cached_state().
    CacheKey& legacy(std::string_view legacy_key);

    CacheKey& add(std::string_view field, std::string_view value);
    CacheKey& add(std::string_view field, const char* value) {
        return add(field, std::string_view(value));
    }
    CacheKey& add(std::string_view field, std::uint64_t value);
    CacheKey& add(std::string_view field, std::int64_t value);
    CacheKey& add(std::string_view field, int value) {
        return add(field, static_cast<std::int64_t>(value));
    }
    /// Rendered with 17 significant digits: the decimal text identifies
    /// the exact double, so equal hashes mean bit-equal values.
    CacheKey& add(std::string_view field, double value);
    CacheKey& add(std::string_view field, bool value);

    /// The canonical "name=value\n" record stream the hash covers.
    [[nodiscard]] const std::string& canonical() const { return canonical_; }
    [[nodiscard]] std::uint64_t hash() const { return fnv1a64(canonical_); }
    [[nodiscard]] std::string hex() const { return hash_hex(hash()); }

    /// Cache filename: "<label>-<hex>.amsckpt" (or "<hex>.amsckpt" with
    /// no label).
    [[nodiscard]] std::string filename() const;

    [[nodiscard]] const std::string& label_text() const { return label_; }
    [[nodiscard]] const std::string& legacy_key() const { return legacy_; }

private:
    std::string canonical_;
    std::string label_;
    std::string legacy_;
};

/// Renders a double with 17 significant digits ("%.17g"): enough for the
/// text to parse back to the exact same bits. Shared by CacheKey, the
/// sweep manifest, and the sweep journals, whose resume protocol depends
/// on exact round-trips.
[[nodiscard]] std::string exact_double(double value);

/// Inverse of exact_double (std::strtod; throws std::invalid_argument on
/// text that is not a full double).
[[nodiscard]] double parse_exact_double(const std::string& text);

}  // namespace ams::train
