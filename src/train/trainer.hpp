// Training / retraining harness implementing the paper's protocol:
// fixed learning rate (no schedule), track validation accuracy each
// epoch, and "if the validation set accuracy begins to decrease after
// some time, the training run is stopped and the maximum validation
// accuracy is reported" — i.e. early stopping with best-epoch snapshot.
#pragma once

#include <functional>
#include <string>

#include "data/data_loader.hpp"
#include "models/resnet.hpp"
#include "nn/sgd.hpp"
#include "train/evaluate.hpp"

namespace ams::train {

/// Training hyperparameters.
struct TrainOptions {
    std::size_t epochs = 6;
    std::size_t batch_size = 64;
    nn::SgdOptions sgd{};
    /// Stop when validation accuracy has not improved for this many
    /// consecutive epochs. 0 disables early stopping.
    std::size_t patience = 2;
    /// DoReFa gradient quantization bits; >= 32 disables it, matching
    /// Distiller's DoReFa variant used in the paper (Sec. 2).
    std::size_t grad_bits = 32;
    std::uint64_t shuffle_seed = 1234;
    /// Called after each epoch with (epoch, train_loss, val_top1); useful
    /// for progress logging. May be empty.
    std::function<void(std::size_t, double, double)> on_epoch;
};

/// Per-epoch record.
struct EpochStats {
    double train_loss = 0.0;
    double val_top1 = 0.0;
};

/// Outcome of a training run.
struct TrainResult {
    double best_val_top1 = 0.0;
    std::size_t best_epoch = 0;
    TensorMap best_state;  ///< snapshot of the best-epoch weights
    std::vector<EpochStats> history;
};

/// Trains `model` on (train_images, train_labels), validating on
/// (val_images, val_labels) after each epoch. The model is left loaded
/// with its best-epoch weights. Throws std::invalid_argument on empty
/// data or zero epochs.
TrainResult fit(models::ResNet& model, const Tensor& train_images,
                const std::vector<std::size_t>& train_labels, const Tensor& val_images,
                const std::vector<std::size_t>& val_labels, const TrainOptions& options);

}  // namespace ams::train
