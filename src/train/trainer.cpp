#include "train/trainer.hpp"

#include <stdexcept>

#include "nn/loss.hpp"
#include "train/grad_quant.hpp"

namespace ams::train {

TrainResult fit(models::ResNet& model, const Tensor& train_images,
                const std::vector<std::size_t>& train_labels, const Tensor& val_images,
                const std::vector<std::size_t>& val_labels, const TrainOptions& options) {
    if (options.epochs == 0) throw std::invalid_argument("fit: epochs must be > 0");
    if (train_images.dim(0) == 0 || val_images.dim(0) == 0) {
        throw std::invalid_argument("fit: empty dataset");
    }

    data::DataLoader loader(train_images, train_labels, options.batch_size,
                            Rng(options.shuffle_seed), /*shuffle=*/true);
    nn::Sgd optimizer(model.parameters(), options.sgd);
    nn::SoftmaxCrossEntropy loss;
    Rng grad_rng(options.shuffle_seed ^ 0x6D17B175ULL);
    const auto params = model.parameters();

    TrainResult result;
    std::size_t epochs_since_best = 0;
    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        model.set_training(true);
        double loss_sum = 0.0;
        const std::size_t batches = loader.batches_per_epoch();
        for (std::size_t b = 0; b < batches; ++b) {
            data::Batch batch = loader.next();
            optimizer.zero_grad();
            Tensor logits = model.forward(batch.images);
            loss_sum += loss.forward(logits, batch.labels);
            model.backward(loss.backward());
            if (options.grad_bits < 32) {
                quantize_gradients(params, options.grad_bits, grad_rng);
            }
            optimizer.step();
        }
        const double train_loss = loss_sum / static_cast<double>(batches);

        const EvalResult val = evaluate_top1(model, val_images, val_labels, options.batch_size,
                                             /*passes=*/1);
        result.history.push_back({train_loss, val.mean});
        if (options.on_epoch) options.on_epoch(epoch, train_loss, val.mean);

        if (val.mean > result.best_val_top1 || result.history.size() == 1) {
            result.best_val_top1 = val.mean;
            result.best_epoch = epoch;
            result.best_state.clear();
            model.collect_state("", result.best_state);
            epochs_since_best = 0;
        } else {
            ++epochs_since_best;
            if (options.patience != 0 && epochs_since_best >= options.patience) break;
        }
    }
    model.load_state("", result.best_state);
    return result;
}

}  // namespace ams::train
