// Gradient quantization (original DoReFa, Zhou et al. Sec. 2.3).
//
// The paper notes: "As opposed to the original implementation,
// Distiller's version of DoReFa does not quantize gradients." This module
// supplies the missing piece so both variants can be compared: k-bit
// quantization of the backward gradients with the stochastic offset the
// original uses to keep the quantizer unbiased,
//   g_q = 2 max|g| * ( quantize_k( g/(2 max|g|) + 1/2 + noise ) - 1/2 ),
// with noise ~ U(-1/2, 1/2) / (2^k - 1).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/module.hpp"

namespace ams::train {

/// Quantizes one gradient tensor in place to `bits` (>= 2). `bits` >= 32
/// is a no-op (the Distiller behaviour). The stochastic offset keeps the
/// estimator unbiased. Throws std::invalid_argument for bits < 2.
void quantize_gradient(Tensor& grad, std::size_t bits, Rng& rng);

/// Applies quantize_gradient to every non-frozen parameter's gradient.
void quantize_gradients(const std::vector<nn::Parameter*>& params, std::size_t bits,
                        Rng& rng);

}  // namespace ams::train
