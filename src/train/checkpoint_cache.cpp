#include "train/checkpoint_cache.hpp"

#include <cstdlib>
#include <filesystem>

namespace ams::train {

std::string sanitize_cache_key(const std::string& key) {
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
        out.push_back(safe ? c : '_');
    }
    return out;
}

std::string default_cache_dir() {
    if (const char* env = std::getenv("AMSNET_CACHE_DIR"); env != nullptr && *env != '\0') {
        return env;
    }
    return "amsnet_cache";
}

TensorMap cached_state(const std::string& cache_dir, const std::string& key,
                       const std::function<TensorMap()>& produce) {
    namespace fs = std::filesystem;
    fs::create_directories(cache_dir);
    const fs::path path = fs::path(cache_dir) / (sanitize_cache_key(key) + ".amsckpt");

    const char* no_cache = std::getenv("AMSNET_NO_CACHE");
    const bool read_cache = (no_cache == nullptr || std::string(no_cache) != "1");
    if (read_cache && fs::exists(path)) {
        try {
            return load_tensor_map_file(path.string());
        } catch (const std::exception&) {
            // Corrupt or stale-format checkpoint: fall through and rebuild.
        }
    }
    TensorMap state = produce();
    save_tensor_map_file(path.string(), state);
    return state;
}

}  // namespace ams::train
