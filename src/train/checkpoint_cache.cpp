#include "train/checkpoint_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "runtime/metrics.hpp"

namespace ams::train {

namespace {

// Concurrent sweep points (core::ExperimentEnv::ams_enob_sweep) may ask
// for the same checkpoint — most often a shared fp32/quantized
// prerequisite with AMSNET_NO_CACHE=1. Serialize produce+save per cache
// path so two threads never train into or write the same file at once;
// distinct keys stay fully concurrent.
std::mutex g_registry_mu;
std::unordered_map<std::string, std::shared_ptr<std::mutex>>& key_registry() {
    static std::unordered_map<std::string, std::shared_ptr<std::mutex>> registry;
    return registry;
}

std::shared_ptr<std::mutex> key_mutex(const std::string& path) {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    std::shared_ptr<std::mutex>& mu = key_registry()[path];
    if (!mu) mu = std::make_shared<std::mutex>();
    return mu;
}

// In-process memo for AMSNET_NO_CACHE=1 runs. Concurrent sweep workers
// (ams_enob_sweep points) share prerequisite keys: without this memo the
// key mutex merely serializes them and each worker retrains the same
// state from scratch. The memo makes the first producer authoritative for
// the process while still never trusting pre-existing disk files.
std::mutex g_memo_mu;
std::unordered_map<std::string, TensorMap>& state_memo() {
    static std::unordered_map<std::string, TensorMap> memo;
    return memo;
}

}  // namespace

std::string sanitize_cache_key(const std::string& key) {
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
        out.push_back(safe ? c : '_');
    }
    return out;
}

std::string default_cache_dir() {
    if (const char* env = std::getenv("AMSNET_CACHE_DIR"); env != nullptr && *env != '\0') {
        return env;
    }
    return "amsnet_cache";
}

TensorMap cached_state(const std::string& cache_dir, const std::string& key,
                       const std::function<TensorMap()>& produce) {
    namespace fs = std::filesystem;
    fs::create_directories(cache_dir);
    const fs::path path = fs::path(cache_dir) / (sanitize_cache_key(key) + ".amsckpt");

    const std::shared_ptr<std::mutex> mu = key_mutex(path.string());
    std::lock_guard<std::mutex> lock(*mu);

    const char* no_cache = std::getenv("AMSNET_NO_CACHE");
    const bool read_cache = (no_cache == nullptr || std::string(no_cache) != "1");
    if (read_cache && fs::exists(path)) {
        try {
            TensorMap state = load_tensor_map_file(path.string());
            runtime::metrics::add(runtime::metrics::Counter::kCheckpointDiskHits);
            return state;
        } catch (const std::exception&) {
            // Corrupt or stale-format checkpoint: fall through and rebuild.
        }
    }
    if (!read_cache) {
        std::lock_guard<std::mutex> memo_lock(g_memo_mu);
        auto it = state_memo().find(path.string());
        if (it != state_memo().end()) {
            runtime::metrics::add(runtime::metrics::Counter::kCheckpointMemoHits);
            return it->second;
        }
    }
    runtime::metrics::add(runtime::metrics::Counter::kCheckpointMisses);
    TensorMap state = produce();
    save_tensor_map_file(path.string(), state);
    if (!read_cache) {
        std::lock_guard<std::mutex> memo_lock(g_memo_mu);
        state_memo()[path.string()] = state;
    }
    return state;
}

}  // namespace ams::train
