#include "train/checkpoint_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "runtime/metrics.hpp"

namespace ams::train {

namespace {

namespace fs = std::filesystem;

// Concurrent sweep points (core::ExperimentEnv::ams_enob_sweep) may ask
// for the same checkpoint — most often a shared fp32/quantized
// prerequisite with AMSNET_NO_CACHE=1. Serialize produce+save per cache
// path so two threads never train into the same file at once; distinct
// keys stay fully concurrent. (Cross-process writers are instead made
// safe by the atomic rename publish: last writer wins with an identical,
// never-torn file.)
std::mutex g_registry_mu;
std::unordered_map<std::string, std::shared_ptr<std::mutex>>& key_registry() {
    static std::unordered_map<std::string, std::shared_ptr<std::mutex>> registry;
    return registry;
}

std::shared_ptr<std::mutex> key_mutex(const std::string& path) {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    std::shared_ptr<std::mutex>& mu = key_registry()[path];
    if (!mu) mu = std::make_shared<std::mutex>();
    return mu;
}

// In-process memo for AMSNET_NO_CACHE=1 runs. Concurrent sweep workers
// (ams_enob_sweep points) share prerequisite keys: without this memo the
// key mutex merely serializes them and each worker retrains the same
// state from scratch. The memo makes the first producer authoritative for
// the process while still never trusting pre-existing disk files. Keyed
// by the full cache path — for content-addressed keys that embeds the
// config hash, so a config change can never hit a stale memo entry.
std::mutex g_memo_mu;
std::unordered_map<std::string, TensorMap>& state_memo() {
    static std::unordered_map<std::string, TensorMap> memo;
    return memo;
}

bool cache_reads_enabled() {
    const char* no_cache = std::getenv("AMSNET_NO_CACHE");
    return no_cache == nullptr || std::string(no_cache) != "1";
}

// Loads `path` if it parses, else logs and reports a recoverable miss.
// `torn` distinguishes "file exists but is corrupt" for the counter.
bool try_load(const fs::path& path, TensorMap& out) {
    if (!fs::exists(path)) return false;
    try {
        out = load_tensor_map_file(path.string());
        return true;
    } catch (const std::exception& e) {
        // A killed pre-atomic-rename writer (or bit rot) left a torn
        // entry. Recompute instead of failing the sweep.
        runtime::metrics::add(runtime::metrics::Counter::kCheckpointCorruptRecovered);
        std::cerr << "[checkpoint_cache] corrupt entry " << path.string() << " (" << e.what()
                  << "); recomputing\n";
        return false;
    }
}

TensorMap produce_and_publish(const fs::path& path, const std::function<TensorMap()>& produce,
                              bool memoize) {
    runtime::metrics::add(runtime::metrics::Counter::kCheckpointMisses);
    TensorMap state = produce();
    save_state_atomic(path.string(), state);
    if (memoize) {
        std::lock_guard<std::mutex> memo_lock(g_memo_mu);
        state_memo()[path.string()] = state;
    }
    return state;
}

}  // namespace

std::string sanitize_cache_key(const std::string& key) {
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
        out.push_back(safe ? c : '_');
    }
    return out;
}

std::string default_cache_dir() {
    if (const char* env = std::getenv("AMSNET_CACHE_DIR"); env != nullptr && *env != '\0') {
        return env;
    }
    return "amsnet_cache";
}

void save_state_atomic(const std::string& path, const TensorMap& state) {
    static std::atomic<std::uint64_t> seq{0};
    const fs::path target(path);
    fs::path tmp = target;
    tmp += ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
           std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
    try {
        save_tensor_map_file(tmp.string(), state);
        // rename(2) atomically replaces the target on the same
        // filesystem: readers see the old complete file or the new
        // complete file, never a partial write.
        fs::rename(tmp, target);
    } catch (...) {
        std::error_code ec;
        fs::remove(tmp, ec);
        throw;
    }
}

TensorMap cached_state(const std::string& cache_dir, const std::string& key,
                       const std::function<TensorMap()>& produce) {
    fs::create_directories(cache_dir);
    const fs::path path = fs::path(cache_dir) / (sanitize_cache_key(key) + ".amsckpt");

    const std::shared_ptr<std::mutex> mu = key_mutex(path.string());
    std::lock_guard<std::mutex> lock(*mu);

    const bool read_cache = cache_reads_enabled();
    if (read_cache) {
        TensorMap state;
        if (try_load(path, state)) {
            runtime::metrics::add(runtime::metrics::Counter::kCheckpointDiskHits);
            return state;
        }
    } else {
        std::lock_guard<std::mutex> memo_lock(g_memo_mu);
        auto it = state_memo().find(path.string());
        if (it != state_memo().end()) {
            runtime::metrics::add(runtime::metrics::Counter::kCheckpointMemoHits);
            return it->second;
        }
    }
    return produce_and_publish(path, produce, /*memoize=*/!read_cache);
}

TensorMap cached_state(const std::string& cache_dir, const CacheKey& key,
                       const std::function<TensorMap()>& produce) {
    fs::create_directories(cache_dir);
    const fs::path path = fs::path(cache_dir) / key.filename();

    const std::shared_ptr<std::mutex> mu = key_mutex(path.string());
    std::lock_guard<std::mutex> lock(*mu);

    const bool read_cache = cache_reads_enabled();
    if (read_cache) {
        TensorMap state;
        if (try_load(path, state)) {
            runtime::metrics::add(runtime::metrics::Counter::kCheckpointDiskHits);
            return state;
        }
        // Migration shim: a cache directory written before content
        // addressing holds this entry under its legacy name. Adopt it
        // under the content-hash name (the legacy file stays, so mixed
        // old/new builds keep working against one directory).
        if (!key.legacy_key().empty()) {
            const fs::path legacy_path =
                fs::path(cache_dir) / (sanitize_cache_key(key.legacy_key()) + ".amsckpt");
            if (try_load(legacy_path, state)) {
                save_state_atomic(path.string(), state);
                runtime::metrics::add(runtime::metrics::Counter::kCheckpointLegacyMigrations);
                runtime::metrics::add(runtime::metrics::Counter::kCheckpointDiskHits);
                return state;
            }
        }
    } else {
        std::lock_guard<std::mutex> memo_lock(g_memo_mu);
        auto it = state_memo().find(path.string());
        if (it != state_memo().end()) {
            runtime::metrics::add(runtime::metrics::Counter::kCheckpointMemoHits);
            return it->second;
        }
    }
    return produce_and_publish(path, produce, /*memoize=*/!read_cache);
}

}  // namespace ams::train
