#include "train/checkpoint_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace ams::train {

namespace {

// Concurrent sweep points (core::ExperimentEnv::ams_enob_sweep) may ask
// for the same checkpoint — most often a shared fp32/quantized
// prerequisite with AMSNET_NO_CACHE=1. Serialize produce+save per cache
// path so two threads never train into or write the same file at once;
// distinct keys stay fully concurrent.
std::mutex g_registry_mu;
std::unordered_map<std::string, std::shared_ptr<std::mutex>>& key_registry() {
    static std::unordered_map<std::string, std::shared_ptr<std::mutex>> registry;
    return registry;
}

std::shared_ptr<std::mutex> key_mutex(const std::string& path) {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    std::shared_ptr<std::mutex>& mu = key_registry()[path];
    if (!mu) mu = std::make_shared<std::mutex>();
    return mu;
}

}  // namespace

std::string sanitize_cache_key(const std::string& key) {
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
        out.push_back(safe ? c : '_');
    }
    return out;
}

std::string default_cache_dir() {
    if (const char* env = std::getenv("AMSNET_CACHE_DIR"); env != nullptr && *env != '\0') {
        return env;
    }
    return "amsnet_cache";
}

TensorMap cached_state(const std::string& cache_dir, const std::string& key,
                       const std::function<TensorMap()>& produce) {
    namespace fs = std::filesystem;
    fs::create_directories(cache_dir);
    const fs::path path = fs::path(cache_dir) / (sanitize_cache_key(key) + ".amsckpt");

    const std::shared_ptr<std::mutex> mu = key_mutex(path.string());
    std::lock_guard<std::mutex> lock(*mu);

    const char* no_cache = std::getenv("AMSNET_NO_CACHE");
    const bool read_cache = (no_cache == nullptr || std::string(no_cache) != "1");
    if (read_cache && fs::exists(path)) {
        try {
            return load_tensor_map_file(path.string());
        } catch (const std::exception&) {
            // Corrupt or stale-format checkpoint: fall through and rebuild.
        }
    }
    TensorMap state = produce();
    save_tensor_map_file(path.string(), state);
    return state;
}

}  // namespace ams::train
