#include "train/evaluate.hpp"

#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "compile/plan.hpp"
#include "nn/loss.hpp"
#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/trace.hpp"

namespace ams::train {

namespace {

/// Restores the model's training flag on scope exit.
class TrainingModeGuard {
public:
    explicit TrainingModeGuard(models::ResNet& model)
        : model_(model), was_training_(model.training()) {}
    ~TrainingModeGuard() { model_.set_training(was_training_); }
    TrainingModeGuard(const TrainingModeGuard&) = delete;
    TrainingModeGuard& operator=(const TrainingModeGuard&) = delete;

private:
    models::ResNet& model_;
    bool was_training_;
};

// The batch loop stays sequential on purpose: the model is a stateful
// graph (cached activations for backward, per-layer noise-stream epochs),
// so batches must hit it in a fixed order for reproducibility. All the
// parallelism lives below — conv/gemm kernels, per-tile noise streams and
// the top-k reduction — which is what makes one pass scale while staying
// bit-identical at any AMSNET_THREADS.
double one_pass_topk(models::ResNet& model, const Tensor& images,
                     const std::vector<std::size_t>& labels, std::size_t k,
                     std::size_t batch_size, runtime::EvalContext& ctx,
                     compile::ExecutionPlan* plan) {
    runtime::trace::Span pass_span("evaluate.pass");
    runtime::metrics::add(runtime::metrics::Counter::kEvalPasses);
    const std::size_t n = images.dim(0);
    double hits = 0.0;
    for (std::size_t start = 0; start < n; start += batch_size) {
        runtime::trace::Span batch_span("evaluate.batch");
        runtime::metrics::add(runtime::metrics::Counter::kEvalBatches);
        const std::size_t count = std::min(batch_size, n - start);
        const runtime::TensorArena::Checkpoint cp = ctx.checkpoint();
        Tensor logits =
            plan != nullptr
                ? plan->run(slice_batch(images, start, count, ctx), ctx)
                : forward_batch(model, slice_batch(images, start, count, ctx), ctx);
        const std::vector<std::size_t> batch_labels(labels.begin() + start,
                                                    labels.begin() + start + count);
        hits += nn::topk_accuracy(logits, batch_labels, k) * static_cast<double>(count);
        ctx.rewind(cp);  // logits and the batch die here
    }
    return hits / static_cast<double>(n);
}

/// Plans the model for the steady-state batch shape (the final partial
/// batch re-reserves inside its own forward, which is just hash lookups
/// plus at most one arena growth on the very first pass).
void plan_for(models::ResNet& model, const Tensor& images, std::size_t batch_size,
              runtime::EvalContext& ctx) {
    const std::size_t first = std::min(batch_size, images.dim(0));
    (void)model.plan(Shape{first, images.dim(1), images.dim(2), images.dim(3)}, ctx);
}

/// Builds the compiled ExecutionPlan for the steady-state batch when
/// AMSNET_COMPILE is on; an unsupported graph silently falls back to the
/// module walk (CompileError is the designed escape hatch, and the two
/// paths are bit-identical anyway).
std::optional<compile::ExecutionPlan> maybe_compile(models::ResNet& model, const Tensor& images,
                                                    std::size_t batch_size) {
    if (!compile::env_enabled()) return std::nullopt;
    const std::size_t first = std::min(batch_size, images.dim(0));
    compile::CompileOptions options;
    options.gemm_int = env_gemm_int_mode();  // AMSNET_GEMM_INT (off by default)
    try {
        return compile::compile(model,
                                Shape{first, images.dim(1), images.dim(2), images.dim(3)},
                                options);
    } catch (const compile::CompileError&) {
        return std::nullopt;
    }
}

}  // namespace

Tensor slice_batch(const Tensor& images, std::size_t start, std::size_t count,
                   runtime::EvalContext& ctx) {
    const std::size_t image = images.dim(1) * images.dim(2) * images.dim(3);
    const Shape shape{count, images.dim(1), images.dim(2), images.dim(3)};
    Tensor batch = Tensor::borrowed(shape, ctx.alloc_activation(shape.numel()));
    runtime::parallel_for(0, count, runtime::suggest_grain(count, 16),
                          [&](std::size_t i_begin, std::size_t i_end) {
                              std::memcpy(batch.data() + i_begin * image,
                                          images.data() + (start + i_begin) * image,
                                          (i_end - i_begin) * image * sizeof(float));
                          });
    return batch;
}

Tensor assemble_batch(const float* const* images, std::size_t count, const Shape& chw,
                      runtime::EvalContext& ctx) {
    if (count == 0) throw std::invalid_argument("assemble_batch: count must be > 0");
    if (chw.rank() != 3) throw std::invalid_argument("assemble_batch: image shape must be CHW");
    const std::size_t image = chw.numel();
    const Shape shape{count, chw.dim(0), chw.dim(1), chw.dim(2)};
    Tensor batch = Tensor::borrowed(shape, ctx.alloc_activation(shape.numel()));
    for (std::size_t i = 0; i < count; ++i) {
        if (images[i] == nullptr) {
            throw std::invalid_argument("assemble_batch: null image pointer");
        }
        std::memcpy(batch.data() + i * image, images[i], image * sizeof(float));
    }
    return batch;
}

Tensor forward_batch(nn::Module& model, const Tensor& batch, runtime::EvalContext& ctx) {
    runtime::trace::Span span("forward.batch");
    return model.forward(batch, ctx);
}

EvalResult evaluate_top1(models::ResNet& model, const Tensor& images,
                         const std::vector<std::size_t>& labels, std::size_t batch_size,
                         std::size_t passes, runtime::EvalContext* ctx) {
    if (images.rank() != 4 || images.dim(0) == 0 || images.dim(0) != labels.size()) {
        throw std::invalid_argument("evaluate_top1: bad images/labels");
    }
    if (passes == 0 || batch_size == 0) {
        throw std::invalid_argument("evaluate_top1: passes and batch_size must be > 0");
    }
    TrainingModeGuard guard(model);
    model.set_training(false);
    runtime::EvalContext local;
    runtime::EvalContext& ec = ctx ? *ctx : local;
    plan_for(model, images, batch_size, ec);
    std::optional<compile::ExecutionPlan> plan = maybe_compile(model, images, batch_size);

    EvalResult result;
    result.passes.reserve(passes);
    for (std::size_t p = 0; p < passes; ++p) {
        result.passes.push_back(one_pass_topk(model, images, labels, 1, batch_size, ec,
                                              plan ? &*plan : nullptr));
    }
    double sum = 0.0;
    for (double a : result.passes) sum += a;
    result.mean = sum / static_cast<double>(passes);
    if (passes > 1) {
        double sq = 0.0;
        for (double a : result.passes) sq += (a - result.mean) * (a - result.mean);
        result.stddev = std::sqrt(sq / static_cast<double>(passes - 1));
    }
    return result;
}

double evaluate_topk(models::ResNet& model, const Tensor& images,
                     const std::vector<std::size_t>& labels, std::size_t k,
                     std::size_t batch_size, runtime::EvalContext* ctx) {
    if (images.dim(0) != labels.size() || images.dim(0) == 0) {
        throw std::invalid_argument("evaluate_topk: bad images/labels");
    }
    TrainingModeGuard guard(model);
    model.set_training(false);
    runtime::EvalContext local;
    runtime::EvalContext& ec = ctx ? *ctx : local;
    plan_for(model, images, batch_size, ec);
    std::optional<compile::ExecutionPlan> plan = maybe_compile(model, images, batch_size);
    return one_pass_topk(model, images, labels, k, batch_size, ec, plan ? &*plan : nullptr);
}

std::vector<double> record_activation_means(models::ResNet& model, const Tensor& images,
                                            std::size_t batch_size,
                                            runtime::EvalContext* ctx) {
    if (images.rank() != 4 || images.dim(0) == 0) {
        throw std::invalid_argument("record_activation_means: bad images");
    }
    TrainingModeGuard guard(model);
    model.set_training(false);
    runtime::EvalContext local;
    runtime::EvalContext& ec = ctx ? *ctx : local;
    plan_for(model, images, batch_size, ec);
    model.reset_stats();
    model.set_recording(true);
    const std::size_t n = images.dim(0);
    for (std::size_t start = 0; start < n; start += batch_size) {
        const std::size_t count = std::min(batch_size, n - start);
        const runtime::TensorArena::Checkpoint cp = ec.checkpoint();
        (void)model.forward(slice_batch(images, start, count, ec), ec);
        ec.rewind(cp);
    }
    model.set_recording(false);
    return model.activation_means();
}

}  // namespace ams::train
