#include "train/cache_key.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "train/checkpoint_cache.hpp"

namespace ams::train {

std::uint64_t fnv1a64(std::string_view text) {
    std::uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string hash_hex(std::uint64_t hash) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
    return buf;
}

std::string exact_double(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

double parse_exact_double(const std::string& text) {
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || end == nullptr || *end != '\0') {
        throw std::invalid_argument("parse_exact_double: not a double: '" + text + "'");
    }
    return v;
}

CacheKey& CacheKey::label(std::string_view text) {
    label_.assign(text);
    return *this;
}

CacheKey& CacheKey::legacy(std::string_view legacy_key) {
    legacy_.assign(legacy_key);
    return *this;
}

CacheKey& CacheKey::add(std::string_view field, std::string_view value) {
    if (field.find_first_of("=\n") != std::string_view::npos) {
        throw std::invalid_argument("CacheKey: field name contains '=' or newline: " +
                                    std::string(field));
    }
    if (value.find('\n') != std::string_view::npos) {
        throw std::invalid_argument("CacheKey: value contains newline for field " +
                                    std::string(field));
    }
    canonical_.append(field);
    canonical_.push_back('=');
    canonical_.append(value);
    canonical_.push_back('\n');
    return *this;
}

CacheKey& CacheKey::add(std::string_view field, std::uint64_t value) {
    return add(field, std::string_view(std::to_string(value)));
}

CacheKey& CacheKey::add(std::string_view field, std::int64_t value) {
    return add(field, std::string_view(std::to_string(value)));
}

CacheKey& CacheKey::add(std::string_view field, double value) {
    return add(field, std::string_view(exact_double(value)));
}

CacheKey& CacheKey::add(std::string_view field, bool value) {
    return add(field, std::string_view(value ? "1" : "0"));
}

std::string CacheKey::filename() const {
    if (label_.empty()) return hex() + ".amsckpt";
    return sanitize_cache_key(label_) + "-" + hex() + ".amsckpt";
}

}  // namespace ams::train
