// Validation-set evaluation with the paper's reporting protocol: each
// reported accuracy is the sample mean of several passes of the validation
// set through the network, with the sample standard deviation as the error
// bar (the passes differ because AMS error injection is stochastic).
#pragma once

#include <cstddef>
#include <vector>

#include "models/resnet.hpp"
#include "runtime/eval_context.hpp"

namespace ams::train {

// ----- the shared single-batch forward path -----
//
// Every consumer that pushes a batch of images through a planned model —
// the offline evaluation protocol below and the serve/ dynamic batcher —
// goes through the same three primitives, so served results are
// bit-identical to offline evaluation by construction (for deterministic
// configurations; tests/serve_test.cpp enforces it).

/// Copies images [start, start + count) of an NCHW set into a borrowed
/// batch tensor in `ctx`'s activation arena (released by the caller's
/// next rewind). Allocation-free in steady state.
[[nodiscard]] Tensor slice_batch(const Tensor& images, std::size_t start, std::size_t count,
                                 runtime::EvalContext& ctx);

/// Gathers `count` single images, given by per-image CHW pointers, into
/// one borrowed [count, C, H, W] batch tensor in `ctx`'s activation
/// arena — the serve batcher's gather step (requests arrive in separate
/// buffers, not as a contiguous range). Throws std::invalid_argument on
/// count == 0 or a null pointer.
[[nodiscard]] Tensor assemble_batch(const float* const* images, std::size_t count,
                                    const Shape& chw, runtime::EvalContext& ctx);

/// One planned eval-mode forward of an assembled batch: the single
/// batch -> logits entry point shared by evaluate_* and the inference
/// server. The caller owns checkpoint/rewind discipline around it; the
/// model must already be in eval mode and planned for (at least) this
/// batch shape.
[[nodiscard]] Tensor forward_batch(nn::Module& model, const Tensor& batch,
                                   runtime::EvalContext& ctx);

/// Aggregated accuracy over repeated validation passes.
struct EvalResult {
    double mean = 0.0;          ///< sample mean of per-pass top-1 accuracy
    double stddev = 0.0;        ///< sample standard deviation (n-1)
    std::vector<double> passes; ///< per-pass top-1 accuracies
};

/// Runs `passes` full passes of (images, labels) through `model` in
/// evaluation mode and reports top-1 statistics. Restores the model's
/// previous training flag afterwards. Throws std::invalid_argument on
/// empty input or passes == 0.
///
/// Inference runs on the planned, arena-backed path: activations live in
/// `ctx`'s arena and are rewound after each batch, so steady-state
/// batches allocate nothing. Pass a context to reuse its warm arenas
/// across calls (e.g. one context per sweep worker); with ctx == nullptr
/// a context local to the call is used. Results are bit-identical either
/// way, and identical to the pre-arena allocating path.
[[nodiscard]] EvalResult evaluate_top1(models::ResNet& model, const Tensor& images,
                                       const std::vector<std::size_t>& labels,
                                       std::size_t batch_size = 64, std::size_t passes = 1,
                                       runtime::EvalContext* ctx = nullptr);

/// Single-pass top-k accuracy in evaluation mode.
[[nodiscard]] double evaluate_topk(models::ResNet& model, const Tensor& images,
                                   const std::vector<std::size_t>& labels, std::size_t k,
                                   std::size_t batch_size = 64,
                                   runtime::EvalContext* ctx = nullptr);

/// Fig. 6 instrumentation: runs one evaluation pass with per-conv-layer
/// activation recording enabled and returns the mean post-injection
/// activation of every conv layer (stem first), evaluated across the
/// whole set.
[[nodiscard]] std::vector<double> record_activation_means(
    models::ResNet& model, const Tensor& images, std::size_t batch_size = 64,
    runtime::EvalContext* ctx = nullptr);

}  // namespace ams::train
