// Validation-set evaluation with the paper's reporting protocol: each
// reported accuracy is the sample mean of several passes of the validation
// set through the network, with the sample standard deviation as the error
// bar (the passes differ because AMS error injection is stochastic).
#pragma once

#include <cstddef>
#include <vector>

#include "models/resnet.hpp"
#include "runtime/eval_context.hpp"

namespace ams::train {

/// Aggregated accuracy over repeated validation passes.
struct EvalResult {
    double mean = 0.0;          ///< sample mean of per-pass top-1 accuracy
    double stddev = 0.0;        ///< sample standard deviation (n-1)
    std::vector<double> passes; ///< per-pass top-1 accuracies
};

/// Runs `passes` full passes of (images, labels) through `model` in
/// evaluation mode and reports top-1 statistics. Restores the model's
/// previous training flag afterwards. Throws std::invalid_argument on
/// empty input or passes == 0.
///
/// Inference runs on the planned, arena-backed path: activations live in
/// `ctx`'s arena and are rewound after each batch, so steady-state
/// batches allocate nothing. Pass a context to reuse its warm arenas
/// across calls (e.g. one context per sweep worker); with ctx == nullptr
/// a context local to the call is used. Results are bit-identical either
/// way, and identical to the pre-arena allocating path.
[[nodiscard]] EvalResult evaluate_top1(models::ResNet& model, const Tensor& images,
                                       const std::vector<std::size_t>& labels,
                                       std::size_t batch_size = 64, std::size_t passes = 1,
                                       runtime::EvalContext* ctx = nullptr);

/// Single-pass top-k accuracy in evaluation mode.
[[nodiscard]] double evaluate_topk(models::ResNet& model, const Tensor& images,
                                   const std::vector<std::size_t>& labels, std::size_t k,
                                   std::size_t batch_size = 64,
                                   runtime::EvalContext* ctx = nullptr);

/// Fig. 6 instrumentation: runs one evaluation pass with per-conv-layer
/// activation recording enabled and returns the mean post-injection
/// activation of every conv layer (stem first), evaluated across the
/// whole set.
[[nodiscard]] std::vector<double> record_activation_means(
    models::ResNet& model, const Tensor& images, std::size_t batch_size = 64,
    runtime::EvalContext* ctx = nullptr);

}  // namespace ams::train
