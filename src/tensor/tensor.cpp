#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ams {

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_.numel(), fill) {}

Tensor Tensor::from_data(Shape shape, std::vector<float> data) {
    if (shape.numel() != data.size()) {
        throw std::invalid_argument("Tensor::from_data: shape " + shape.str() + " needs " +
                                    std::to_string(shape.numel()) + " elements, got " +
                                    std::to_string(data.size()));
    }
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = std::move(data);
    return t;
}

Tensor Tensor::reshaped(Shape new_shape) const& {
    Tensor copy = *this;
    return std::move(copy).reshaped(std::move(new_shape));
}

Tensor Tensor::reshaped(Shape new_shape) && {
    if (new_shape.numel() != data_.size()) {
        throw std::invalid_argument("Tensor::reshaped: cannot reshape " + shape_.str() + " (" +
                                    std::to_string(data_.size()) + " elems) to " + new_shape.str());
    }
    shape_ = std::move(new_shape);
    return std::move(*this);
}

void Tensor::fill(float value) {
    std::fill(data_.begin(), data_.end(), value);
}

void Tensor::apply(const std::function<float(float)>& fn) {
    for (float& v : data_) v = fn(v);
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
    for (float& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
    for (float& v : data_) v = static_cast<float>(rng.normal(mean, stddev));
}

void Tensor::fill_he_normal(Rng& rng, std::size_t fan_in) {
    if (fan_in == 0) throw std::invalid_argument("fill_he_normal: fan_in must be > 0");
    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    fill_normal(rng, 0.0f, static_cast<float>(stddev));
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
    if (a.shape() != b.shape()) {
        throw std::invalid_argument(std::string(what) + ": shape mismatch " + a.shape().str() +
                                    " vs " + b.shape().str());
    }
}

Tensor& Tensor::operator+=(const Tensor& other) {
    check_same_shape(*this, other, "Tensor::operator+=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
    check_same_shape(*this, other, "Tensor::operator-=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
    check_same_shape(*this, other, "Tensor::operator*=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
    return *this;
}

Tensor& Tensor::operator+=(float s) {
    for (float& v : data_) v += s;
    return *this;
}

Tensor& Tensor::operator*=(float s) {
    for (float& v : data_) v *= s;
    return *this;
}

float Tensor::sum() const {
    // Pairwise-ish accumulation in double: adequate accuracy for our sizes.
    double acc = 0.0;
    for (float v : data_) acc += v;
    return static_cast<float>(acc);
}

float Tensor::mean() const {
    if (data_.empty()) return 0.0f;
    return static_cast<float>(static_cast<double>(sum()) / static_cast<double>(data_.size()));
}

float Tensor::variance() const {
    if (data_.empty()) return 0.0f;
    const double m = mean();
    double acc = 0.0;
    for (float v : data_) {
        const double d = v - m;
        acc += d * d;
    }
    return static_cast<float>(acc / static_cast<double>(data_.size()));
}

float Tensor::min() const {
    if (data_.empty()) throw std::logic_error("Tensor::min on empty tensor");
    return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
    if (data_.empty()) throw std::logic_error("Tensor::max on empty tensor");
    return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
    float m = 0.0f;
    for (float v : data_) m = std::max(m, std::fabs(v));
    return m;
}

std::size_t Tensor::argmax() const {
    if (data_.empty()) throw std::logic_error("Tensor::argmax on empty tensor");
    return static_cast<std::size_t>(
        std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

Tensor operator+(Tensor a, const Tensor& b) {
    a += b;
    return a;
}

Tensor operator-(Tensor a, const Tensor& b) {
    a -= b;
    return a;
}

Tensor operator*(Tensor a, const Tensor& b) {
    a *= b;
    return a;
}

Tensor operator*(Tensor a, float s) {
    a *= s;
    return a;
}

Tensor operator*(float s, Tensor a) {
    a *= s;
    return a;
}

}  // namespace ams
