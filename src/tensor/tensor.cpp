#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ams {

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape), owned_(shape.numel(), fill), ptr_(owned_.data()), size_(owned_.size()) {}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), owned_(other.ptr_, other.ptr_ + other.size_), size_(other.size_) {
    ptr_ = owned_.data();
}

Tensor& Tensor::operator=(const Tensor& other) {
    if (this == &other) return *this;
    shape_ = other.shape_;
    owned_.assign(other.ptr_, other.ptr_ + other.size_);
    ptr_ = owned_.data();
    size_ = other.size_;
    return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_), owned_(std::move(other.owned_)), ptr_(other.ptr_), size_(other.size_) {
    other.shape_ = Shape{};
    other.ptr_ = nullptr;
    other.size_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
    if (this == &other) return *this;
    shape_ = other.shape_;
    owned_ = std::move(other.owned_);
    ptr_ = other.ptr_;
    size_ = other.size_;
    other.shape_ = Shape{};
    other.owned_.clear();
    other.ptr_ = nullptr;
    other.size_ = 0;
    return *this;
}

Tensor Tensor::from_data(Shape shape, const std::vector<float>& data) {
    if (shape.numel() != data.size()) {
        throw std::invalid_argument("Tensor::from_data: shape " + shape.str() + " needs " +
                                    std::to_string(shape.numel()) + " elements, got " +
                                    std::to_string(data.size()));
    }
    Tensor t;
    t.shape_ = shape;
    t.owned_.assign(data.begin(), data.end());
    t.ptr_ = t.owned_.data();
    t.size_ = t.owned_.size();
    return t;
}

Tensor Tensor::borrowed(Shape shape, float* data) {
    const std::size_t n = shape.numel();
    if (data == nullptr && n != 0) {
        throw std::invalid_argument("Tensor::borrowed: null data for shape " + shape.str());
    }
    Tensor t;
    t.shape_ = shape;
    t.ptr_ = data;
    t.size_ = n;
    return t;
}

Tensor Tensor::reshaped(Shape new_shape) const& {
    Tensor copy = *this;
    return std::move(copy).reshaped(new_shape);
}

Tensor Tensor::reshaped(Shape new_shape) && {
    if (new_shape.numel() != size_) {
        throw std::invalid_argument("Tensor::reshaped: cannot reshape " + shape_.str() + " (" +
                                    std::to_string(size_) + " elems) to " + new_shape.str());
    }
    shape_ = new_shape;
    return std::move(*this);
}

void Tensor::fill(float value) {
    std::fill(ptr_, ptr_ + size_, value);
}

void Tensor::apply(const std::function<float(float)>& fn) {
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] = fn(ptr_[i]);
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] = static_cast<float>(rng.normal(mean, stddev));
}

void Tensor::fill_he_normal(Rng& rng, std::size_t fan_in) {
    if (fan_in == 0) throw std::invalid_argument("fill_he_normal: fan_in must be > 0");
    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    fill_normal(rng, 0.0f, static_cast<float>(stddev));
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
    if (a.shape() != b.shape()) {
        throw std::invalid_argument(std::string(what) + ": shape mismatch " + a.shape().str() +
                                    " vs " + b.shape().str());
    }
}

Tensor& Tensor::operator+=(const Tensor& other) {
    check_same_shape(*this, other, "Tensor::operator+=");
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] += other.ptr_[i];
    return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
    check_same_shape(*this, other, "Tensor::operator-=");
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] -= other.ptr_[i];
    return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
    check_same_shape(*this, other, "Tensor::operator*=");
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] *= other.ptr_[i];
    return *this;
}

Tensor& Tensor::operator+=(float s) {
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] += s;
    return *this;
}

Tensor& Tensor::operator*=(float s) {
    for (std::size_t i = 0; i < size_; ++i) ptr_[i] *= s;
    return *this;
}

float Tensor::sum() const {
    // Accumulation in double: adequate accuracy for our sizes.
    double acc = 0.0;
    for (std::size_t i = 0; i < size_; ++i) acc += ptr_[i];
    return static_cast<float>(acc);
}

float Tensor::mean() const {
    if (size_ == 0) return 0.0f;
    return static_cast<float>(static_cast<double>(sum()) / static_cast<double>(size_));
}

float Tensor::variance() const {
    if (size_ == 0) return 0.0f;
    const double m = mean();
    double acc = 0.0;
    for (std::size_t i = 0; i < size_; ++i) {
        const double d = ptr_[i] - m;
        acc += d * d;
    }
    return static_cast<float>(acc / static_cast<double>(size_));
}

float Tensor::min() const {
    if (size_ == 0) throw std::logic_error("Tensor::min on empty tensor");
    return *std::min_element(ptr_, ptr_ + size_);
}

float Tensor::max() const {
    if (size_ == 0) throw std::logic_error("Tensor::max on empty tensor");
    return *std::max_element(ptr_, ptr_ + size_);
}

float Tensor::abs_max() const {
    float m = 0.0f;
    for (std::size_t i = 0; i < size_; ++i) m = std::max(m, std::fabs(ptr_[i]));
    return m;
}

std::size_t Tensor::argmax() const {
    if (size_ == 0) throw std::logic_error("Tensor::argmax on empty tensor");
    return static_cast<std::size_t>(
        std::distance(ptr_, std::max_element(ptr_, ptr_ + size_)));
}

Tensor operator+(Tensor a, const Tensor& b) {
    a += b;
    return a;
}

Tensor operator-(Tensor a, const Tensor& b) {
    a -= b;
    return a;
}

Tensor operator*(Tensor a, const Tensor& b) {
    a *= b;
    return a;
}

Tensor operator*(Tensor a, float s) {
    a *= s;
    return a;
}

Tensor operator*(float s, Tensor a) {
    a *= s;
    return a;
}

}  // namespace ams
