#include "tensor/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ams {

std::uint64_t SplitMix64::next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t x = next_u64();
    while (x >= limit) x = next_u64();
    return x % n;
}

double Rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 is kept away from 0 so log() is finite.
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
    return mean + stddev * normal();
}

Rng Rng::split(std::uint64_t stream_id) const {
    SplitMix64 sm(s_[0] ^ rotl(stream_id, 17) ^ 0xA3EC647659359ACDULL);
    return Rng(sm.next() ^ s_[3]);
}

}  // namespace ams
