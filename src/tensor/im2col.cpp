#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/parallel_for.hpp"

namespace ams {

void ConvGeometry::validate() const {
    if (in_channels == 0 || in_h == 0 || in_w == 0) {
        throw std::invalid_argument("ConvGeometry: input dimensions must be nonzero");
    }
    if (kernel_h == 0 || kernel_w == 0) {
        throw std::invalid_argument("ConvGeometry: kernel dimensions must be nonzero");
    }
    if (stride_h == 0 || stride_w == 0) {
        throw std::invalid_argument("ConvGeometry: stride must be nonzero");
    }
    if (in_h + 2 * pad_h < kernel_h || in_w + 2 * pad_w < kernel_w) {
        throw std::invalid_argument("ConvGeometry: kernel larger than padded input");
    }
}

void im2col(const float* image, const ConvGeometry& g, float* columns) {
    const std::size_t oh = g.out_h();
    const std::size_t ow = g.out_w();
    const std::size_t out_spatial = oh * ow;
    const std::size_t patch_rows = g.in_channels * g.kernel_h * g.kernel_w;
    // Each flat row (c, kh, kw) fills its own slice of `columns`, so the
    // row loop parallelizes with no ordering effect on the result.
    runtime::parallel_for(
        0, patch_rows, runtime::suggest_grain(patch_rows, 16),
        [&](std::size_t row_begin, std::size_t row_end) {
            for (std::size_t row = row_begin; row < row_end; ++row) {
                const std::size_t kw = row % g.kernel_w;
                const std::size_t kh = (row / g.kernel_w) % g.kernel_h;
                const std::size_t c = row / (g.kernel_w * g.kernel_h);
                const float* chan = image + c * g.in_h * g.in_w;
                float* out_row = columns + row * out_spatial;
                for (std::size_t oy = 0; oy < oh; ++oy) {
                    // Signed arithmetic: padding can take the tap off-image.
                    const long long iy = static_cast<long long>(oy * g.stride_h + kh) -
                                         static_cast<long long>(g.pad_h);
                    if (iy < 0 || iy >= static_cast<long long>(g.in_h)) {
                        for (std::size_t ox = 0; ox < ow; ++ox) out_row[oy * ow + ox] = 0.0f;
                        continue;
                    }
                    const float* in_row = chan + static_cast<std::size_t>(iy) * g.in_w;
                    for (std::size_t ox = 0; ox < ow; ++ox) {
                        const long long ix = static_cast<long long>(ox * g.stride_w + kw) -
                                             static_cast<long long>(g.pad_w);
                        out_row[oy * ow + ox] =
                            (ix < 0 || ix >= static_cast<long long>(g.in_w))
                                ? 0.0f
                                : in_row[static_cast<std::size_t>(ix)];
                    }
                }
            }
        });
}

namespace {

// Shared body of the code-typed twins. Mirrors im2col's addressing
// exactly (the float loop stays separate so its parallel grain policy is
// untouched); padding taps take code 0. For unit column stride the
// inner loop degenerates to one contiguous row copy between two padding
// runs, so the common 3x3/s1 case moves whole rows with memcpy instead
// of per-tap bound checks.
template <typename Code>
void im2col_codes(const Code* image, const ConvGeometry& g, Code* columns) {
    const std::size_t oh = g.out_h();
    const std::size_t ow = g.out_w();
    const std::size_t out_spatial = oh * ow;
    const std::size_t patch_rows = g.in_channels * g.kernel_h * g.kernel_w;
    for (std::size_t row = 0; row < patch_rows; ++row) {
        const std::size_t kw = row % g.kernel_w;
        const std::size_t kh = (row / g.kernel_w) % g.kernel_h;
        const std::size_t c = row / (g.kernel_w * g.kernel_h);
        const Code* chan = image + c * g.in_h * g.in_w;
        Code* out_row = columns + row * out_spatial;
        // With stride_w == 1, ix = ox + (kw - pad_w): in-bounds for
        // ox in [lo, hi).
        const long long off = static_cast<long long>(kw) - static_cast<long long>(g.pad_w);
        const std::size_t lo =
            g.stride_w == 1 ? static_cast<std::size_t>(std::max(0LL, -off)) : 0;
        const std::size_t hi =
            g.stride_w == 1
                ? static_cast<std::size_t>(std::clamp(
                      static_cast<long long>(g.in_w) - off, 0LL, static_cast<long long>(ow)))
                : 0;
        for (std::size_t oy = 0; oy < oh; ++oy) {
            const long long iy = static_cast<long long>(oy * g.stride_h + kh) -
                                 static_cast<long long>(g.pad_h);
            Code* dst = out_row + oy * ow;
            if (iy < 0 || iy >= static_cast<long long>(g.in_h)) {
                std::memset(dst, 0, ow * sizeof(Code));
                continue;
            }
            const Code* in_row = chan + static_cast<std::size_t>(iy) * g.in_w;
            if (g.stride_w == 1) {
                if (lo > 0) std::memset(dst, 0, lo * sizeof(Code));
                if (hi > lo) {
                    const auto ix0 = static_cast<std::size_t>(off + static_cast<long long>(lo));
                    std::memcpy(dst + lo, in_row + ix0, (hi - lo) * sizeof(Code));
                }
                if (ow > hi) std::memset(dst + hi, 0, (ow - hi) * sizeof(Code));
                continue;
            }
            for (std::size_t ox = 0; ox < ow; ++ox) {
                const long long ix = static_cast<long long>(ox * g.stride_w + kw) -
                                     static_cast<long long>(g.pad_w);
                dst[ox] = (ix < 0 || ix >= static_cast<long long>(g.in_w))
                              ? Code{0}
                              : in_row[static_cast<std::size_t>(ix)];
            }
        }
    }
}

}  // namespace

void im2col_u8(const std::uint8_t* image, const ConvGeometry& g, std::uint8_t* columns) {
    im2col_codes(image, g, columns);
}

void im2col_i16(const std::int16_t* image, const ConvGeometry& g, std::int16_t* columns) {
    im2col_codes(image, g, columns);
}

void col2im(const float* columns, const ConvGeometry& g, float* image) {
    const std::size_t oh = g.out_h();
    const std::size_t ow = g.out_w();
    const std::size_t out_spatial = oh * ow;
    // Rows of one channel scatter-add into overlapping pixels, so the
    // parallel unit is the channel: images of different channels are
    // disjoint, and within a channel the (kh, kw, oy, ox) accumulation
    // order stays exactly the serial one.
    auto channels = [&](std::size_t c_begin, std::size_t c_end) {
        for (std::size_t c = c_begin; c < c_end; ++c) {
            std::size_t row = c * g.kernel_h * g.kernel_w;
            float* chan = image + c * g.in_h * g.in_w;
            for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
                for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
                    const float* in_row = columns + row * out_spatial;
                    for (std::size_t oy = 0; oy < oh; ++oy) {
                        const long long iy = static_cast<long long>(oy * g.stride_h + kh) -
                                             static_cast<long long>(g.pad_h);
                        if (iy < 0 || iy >= static_cast<long long>(g.in_h)) continue;
                        float* img_row = chan + static_cast<std::size_t>(iy) * g.in_w;
                        for (std::size_t ox = 0; ox < ow; ++ox) {
                            const long long ix = static_cast<long long>(ox * g.stride_w + kw) -
                                                 static_cast<long long>(g.pad_w);
                            if (ix < 0 || ix >= static_cast<long long>(g.in_w)) continue;
                            img_row[static_cast<std::size_t>(ix)] += in_row[oy * ow + ox];
                        }
                    }
                }
            }
        }
    };
    runtime::parallel_for(0, g.in_channels, runtime::suggest_grain(g.in_channels, 1),
                          channels);
}

void ConvLowering::lower_batch(const float* batch, std::size_t batch_size,
                               float* columns) const {
    const std::size_t per_image = columns_floats();
    runtime::parallel_for(0, batch_size, 1, [&](std::size_t b_begin, std::size_t b_end) {
        for (std::size_t b = b_begin; b < b_end; ++b) {
            lower_image(batch, b, columns + b * per_image);
        }
    });
}

}  // namespace ams
