// AlignedAllocator: std::vector storage aligned to a fixed boundary.
//
// Tensor heap storage uses 64-byte alignment so SIMD loads never
// straddle cache lines regardless of whether a tensor is heap- or
// arena-backed (TensorArena already guarantees 64, runtime/arena.hpp).
// Allocation goes through the aligned global operator new, so the
// alloc-counting test override (tests/alloc_count_test.cpp) still
// observes every tensor allocation.
#pragma once

#include <cstddef>
#include <new>

namespace ams {

template <typename T, std::size_t Align>
struct AlignedAllocator {
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "Align must be a power of two no weaker than alignof(T)");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

    [[nodiscard]] T* allocate(std::size_t n) {
        return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
    }
    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{Align});
    }

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Align>;
    };
};

template <typename T, typename U, std::size_t Align>
bool operator==(const AlignedAllocator<T, Align>&, const AlignedAllocator<U, Align>&) {
    return true;
}
template <typename T, typename U, std::size_t Align>
bool operator!=(const AlignedAllocator<T, Align>&, const AlignedAllocator<U, Align>&) {
    return false;
}

}  // namespace ams
