#include "tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

namespace ams {

std::size_t Shape::numel() const {
    std::size_t n = 1;
    for (std::size_t d : dims_) n *= d;
    return n;
}

std::vector<std::size_t> Shape::strides() const {
    std::vector<std::size_t> s(dims_.size());
    std::size_t acc = 1;
    for (std::size_t i = dims_.size(); i-- > 0;) {
        s[i] = acc;
        acc *= dims_[i];
    }
    return s;
}

std::size_t Shape::offset(const std::vector<std::size_t>& index) const {
    if (index.size() != dims_.size()) {
        throw std::invalid_argument("Shape::offset: rank mismatch: index rank " +
                                    std::to_string(index.size()) + " vs shape rank " +
                                    std::to_string(dims_.size()));
    }
    std::size_t off = 0;
    std::size_t stride = 1;
    for (std::size_t i = dims_.size(); i-- > 0;) {
        if (index[i] >= dims_[i]) {
            throw std::invalid_argument("Shape::offset: index " + std::to_string(index[i]) +
                                        " out of range for dim " + std::to_string(i) + " of size " +
                                        std::to_string(dims_[i]));
        }
        off += index[i] * stride;
        stride *= dims_[i];
    }
    return off;
}

std::string Shape::str() const {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i != 0) os << ", ";
        os << dims_[i];
    }
    os << ']';
    return os.str();
}

}  // namespace ams
