#include "tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

namespace ams {

void Shape::assign(const std::size_t* dims, std::size_t count) {
    if (count > kMaxRank) {
        throw std::invalid_argument("Shape: rank " + std::to_string(count) +
                                    " exceeds kMaxRank (" + std::to_string(kMaxRank) + ")");
    }
    rank_ = count;
    for (std::size_t i = 0; i < count; ++i) dims_[i] = dims[i];
}

std::size_t Shape::dim(std::size_t axis) const {
    if (axis >= rank_) {
        throw std::out_of_range("Shape::dim: axis " + std::to_string(axis) +
                                " out of range for rank " + std::to_string(rank_));
    }
    return dims_[axis];
}

std::size_t Shape::numel() const {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
}

std::vector<std::size_t> Shape::strides() const {
    std::vector<std::size_t> s(rank_);
    std::size_t acc = 1;
    for (std::size_t i = rank_; i-- > 0;) {
        s[i] = acc;
        acc *= dims_[i];
    }
    return s;
}

std::size_t Shape::offset(const std::vector<std::size_t>& index) const {
    if (index.size() != rank_) {
        throw std::invalid_argument("Shape::offset: rank mismatch: index rank " +
                                    std::to_string(index.size()) + " vs shape rank " +
                                    std::to_string(rank_));
    }
    std::size_t off = 0;
    std::size_t stride = 1;
    for (std::size_t i = rank_; i-- > 0;) {
        if (index[i] >= dims_[i]) {
            throw std::invalid_argument("Shape::offset: index " + std::to_string(index[i]) +
                                        " out of range for dim " + std::to_string(i) + " of size " +
                                        std::to_string(dims_[i]));
        }
        off += index[i] * stride;
        stride *= dims_[i];
    }
    return off;
}

std::string Shape::str() const {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < rank_; ++i) {
        if (i != 0) os << ", ";
        os << dims_[i];
    }
    os << ']';
    return os.str();
}

}  // namespace ams
