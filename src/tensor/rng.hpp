// Deterministic pseudo-random number generation for reproducible experiments.
//
// We implement xoshiro256** (Blackman & Vigna) seeded via SplitMix64 rather
// than relying on std::mt19937/std::normal_distribution, whose outputs are
// not guaranteed to be identical across standard library implementations.
// Every experiment in this repository is reproducible from a single seed.
#pragma once

#include <array>
#include <cstdint>

namespace ams {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next();

private:
    std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 256-bit state.
///
/// Also provides the floating-point helpers used throughout the library
/// (uniform, normal via Box-Muller). Satisfies UniformRandomBitGenerator
/// so it can be used with std::shuffle.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the full 256-bit state from `seed` via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~static_cast<result_type>(0); }

    /// Next raw 64-bit output.
    result_type operator()() { return next_u64(); }
    std::uint64_t next_u64();

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n). Requires n > 0.
    std::uint64_t uniform_index(std::uint64_t n);

    /// Standard normal deviate (Box-Muller, cached pair).
    double normal();

    /// Normal deviate with the given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Derives an independent generator for a named substream. Combining the
    /// current state with `stream_id` through SplitMix64 gives decorrelated
    /// child streams (used to give each layer its own noise stream).
    [[nodiscard]] Rng split(std::uint64_t stream_id) const;

private:
    std::array<std::uint64_t, 4> s_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace ams
