#include "tensor/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ams {

namespace {

constexpr std::uint32_t kTensorMagic = 0x414D5354;  // "AMST"
constexpr std::uint32_t kMapMagic = 0x414D534D;     // "AMSM"

template <typename T>
void write_pod(std::ostream& os, const T& value) {
    os.write(reinterpret_cast<const char*>(&value), sizeof(T));
    if (!os) throw std::runtime_error("serialize: write failed");
}

template <typename T>
T read_pod(std::istream& is) {
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!is) throw std::runtime_error("serialize: unexpected end of stream");
    return value;
}

}  // namespace

void save_tensor(std::ostream& os, const Tensor& t) {
    write_pod(os, kTensorMagic);
    write_pod(os, static_cast<std::uint32_t>(t.rank()));
    for (std::size_t i = 0; i < t.rank(); ++i) {
        write_pod(os, static_cast<std::uint64_t>(t.dim(i)));
    }
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!os) throw std::runtime_error("serialize: tensor data write failed");
}

Tensor load_tensor(std::istream& is) {
    if (read_pod<std::uint32_t>(is) != kTensorMagic) {
        throw std::runtime_error("load_tensor: bad magic (not an amsnet tensor)");
    }
    const auto rank = read_pod<std::uint32_t>(is);
    if (rank > 16) throw std::runtime_error("load_tensor: implausible rank");
    std::vector<std::size_t> dims(rank);
    for (auto& d : dims) d = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    Tensor t(Shape{dims});
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!is) throw std::runtime_error("load_tensor: truncated tensor data");
    return t;
}

void save_tensor_map(std::ostream& os, const TensorMap& tensors) {
    write_pod(os, kMapMagic);
    write_pod(os, static_cast<std::uint64_t>(tensors.size()));
    for (const auto& [name, tensor] : tensors) {
        write_pod(os, static_cast<std::uint64_t>(name.size()));
        os.write(name.data(), static_cast<std::streamsize>(name.size()));
        if (!os) throw std::runtime_error("save_tensor_map: name write failed");
        save_tensor(os, tensor);
    }
}

TensorMap load_tensor_map(std::istream& is) {
    if (read_pod<std::uint32_t>(is) != kMapMagic) {
        throw std::runtime_error("load_tensor_map: bad magic (not an amsnet checkpoint)");
    }
    const auto count = read_pod<std::uint64_t>(is);
    TensorMap map;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto name_len = read_pod<std::uint64_t>(is);
        if (name_len > 4096) throw std::runtime_error("load_tensor_map: implausible name length");
        std::string name(name_len, '\0');
        is.read(name.data(), static_cast<std::streamsize>(name_len));
        if (!is) throw std::runtime_error("load_tensor_map: truncated name");
        map.emplace(std::move(name), load_tensor(is));
    }
    return map;
}

void save_tensor_map_file(const std::string& path, const TensorMap& tensors) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("save_tensor_map_file: cannot open " + path);
    save_tensor_map(os, tensors);
}

TensorMap load_tensor_map_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("load_tensor_map_file: cannot open " + path);
    return load_tensor_map(is);
}

}  // namespace ams
