// Packed integer GEMM microkernels for the quantized numeric domain.
//
// The DoReFa grids give every operand a small integer code
// (quant/quantized_view.hpp); these kernels multiply the codes directly
// and hand back the exact int32 accumulator:
//
//   acc[i][j] = sum_k a[i][k] * b[k][j]        (integer, no rounding)
//
// so requantization is a single float multiply per output
// (compile/executor epilogue). Unlike the fp32 kernels, *every* arm —
// scalar reference, 128-bit SSSE3/SSE4.1 (`pmaddubsw`/`pmaddwd`), and
// 256-bit AVX2 (`vpmaddubsw`/`vpmaddwd`) — produces bit-identical
// results at any thread count, because integer addition is exact and
// associative. The scalar arm therefore *is* the reference semantics of
// the vector arms, not an approximation of them.
//
// Arm selection follows the AMSNET_SIMD dispatcher: kAvx2 uses the
// 256-bit kernels, kSse41 the 128-bit kernels, kScalar (AMSNET_SIMD=off)
// the portable loops. Whether integer GEMM runs at all is a *separate*
// knob, AMSNET_GEMM_INT (see GemmIntMode), consumed by the compiler.
//
// Operand contracts (enforced by the compiler's eligibility rules):
//   * gemm_s8u8 — A signed codes |a| <= 127, B unsigned codes b <= 127
//     (sign-magnitude grids of <= 8-bit operands). The i16 intermediate
//     of pmaddubsw then never saturates: 2 * 127 * 127 < 2^15.
//   * gemm_s16 — both operands signed 16-bit codes, |code| <= 32767
//     (sign-magnitude never produces -32768, so pmaddwd cannot overflow).
//   * int_accumulator_safe(max|a|, max|b|, k) must hold for the int32
//     accumulator.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/gemm_kernels.hpp"

namespace ams {

/// Which integer GEMM path the compiler may select (AMSNET_GEMM_INT).
enum class GemmIntMode {
    kOff,    ///< every GEMM stays fp32 (default; bit-identical plans)
    kInt8,   ///< int8 codes where eligible, fp32 elsewhere
    kInt16,  ///< int16 codes where eligible, fp32 elsewhere
    kAuto,   ///< int8 where eligible, else int16, else fp32
};

[[nodiscard]] const char* gemm_int_mode_name(GemmIntMode mode);

/// Parses "off" / "int8" / "int16" / "auto"; nullptr, empty, or
/// unrecognized text maps to kOff.
[[nodiscard]] GemmIntMode parse_gemm_int_mode(const char* text);

/// parse_gemm_int_mode(getenv("AMSNET_GEMM_INT")) — re-read every call.
[[nodiscard]] GemmIntMode env_gemm_int_mode();

/// True when a K-long dot of codes bounded by max_a * max_b cannot
/// overflow the int32 accumulator (kept <= 2^30 for 2x headroom).
[[nodiscard]] constexpr bool int_accumulator_safe(std::size_t max_a, std::size_t max_b,
                                                  std::size_t k) {
    constexpr std::uint64_t kBound = 1ull << 30;
    return static_cast<std::uint64_t>(max_a) * max_b * k <= kBound;
}

/// C (MxN, int32) = A (MxK, int8 codes) * B (KxN, uint8 codes).
/// `pack` supplies the packed-B panel scratch (nullptr: thread-local).
void gemm_s8u8(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c, std::size_t m,
               std::size_t k, std::size_t n, GemmPackBuffers* pack = nullptr);

/// C (MxN, int32) = A (MxK, int16 codes) * B (KxN, int16 codes).
void gemm_s16(const std::int16_t* a, const std::int16_t* b, std::int32_t* c, std::size_t m,
              std::size_t k, std::size_t n, GemmPackBuffers* pack = nullptr);

// ----- packed-panel geometry (shared by the SSE4.1 and AVX2 arms) -----
//
// B panels mirror the fp32 packing scheme at integer widths: column
// groups of kIntNr = 8, zero-padded in both K and N. int8 interleaves
// k-blocks of 4 (one pmaddubsw feeds 4 products per column), int16
// k-blocks of 2 (one pmaddwd feeds 2). Within a k-block the 8 columns'
// codes are contiguous — 16 bytes = one XMM load covers 4 columns, 32
// bytes = one YMM load covers all 8.

inline constexpr std::size_t kIntMr = 4;  ///< A rows per microkernel tile
inline constexpr std::size_t kIntNr = 8;  ///< B columns per panel group

[[nodiscard]] constexpr std::size_t round_up_pow2(std::size_t v, std::size_t a) {
    return (v + a - 1) & ~(a - 1);
}

/// Pack-buffer floats for the int8 B panel: round_up(N,8) * round_up(K,4)
/// bytes of codes, rounded up to whole floats.
[[nodiscard]] constexpr std::size_t packed_b_i8_floats(std::size_t k, std::size_t n) {
    return (round_up_pow2(n, kIntNr) * round_up_pow2(k, 4) + 3) / 4;
}

/// Pack-buffer floats for the int16 B panel: round_up(N,8) * round_up(K,2)
/// 16-bit codes.
[[nodiscard]] constexpr std::size_t packed_b_i16_floats(std::size_t k, std::size_t n) {
    return (round_up_pow2(n, kIntNr) * round_up_pow2(k, 2) * 2 + 3) / 4;
}

namespace kernels {

/// Packs B (KxN row-major codes) into the int8 panel layout:
/// panel[g*K4*8 + kb*32 + c*4 + t] = b[(4kb+t)*n + 8g+c], zero-padded.
void pack_b_i8(const std::uint8_t* b, std::size_t k, std::size_t n, std::uint8_t* panel);

/// int16 panel: panel[g*K2*8 + kb*16 + c*2 + t] = b[(2kb+t)*n + 8g+c].
void pack_b_i16(const std::int16_t* b, std::size_t k, std::size_t n, std::int16_t* panel);

/// Packs `rows` (<= kIntMr) rows of A into the 4-k interleaved strip
/// strip[kb*16 + r*4 + t] = a[r*k + 4kb+t]; missing rows/k zero-padded.
void pack_a_i8(const std::int8_t* a, std::size_t rows, std::size_t k, std::int8_t* strip);

/// 2-k interleaved int16 strip: strip[kb*8 + r*2 + t] = a[r*k + 2kb+t].
void pack_a_i16(const std::int16_t* a, std::size_t rows, std::size_t k, std::int16_t* strip);

// Row-range vector arms over a pre-packed B panel (gemm_int_sse41.cpp /
// gemm_int_avx2.cpp; only called behind the matching cpu_supports
// check). Each packs its own thread-local A strips.
void gemm_s8u8_rows_sse41(const std::int8_t* a, const std::uint8_t* panel, std::int32_t* c,
                          std::size_t row_begin, std::size_t row_end, std::size_t k,
                          std::size_t n);
void gemm_s16_rows_sse41(const std::int16_t* a, const std::int16_t* panel, std::int32_t* c,
                         std::size_t row_begin, std::size_t row_end, std::size_t k,
                         std::size_t n);
void gemm_s8u8_rows_avx2(const std::int8_t* a, const std::uint8_t* panel, std::int32_t* c,
                         std::size_t row_begin, std::size_t row_end, std::size_t k,
                         std::size_t n);
void gemm_s16_rows_avx2(const std::int16_t* a, const std::int16_t* panel, std::int32_t* c,
                        std::size_t row_begin, std::size_t row_end, std::size_t k,
                        std::size_t n);

}  // namespace kernels

}  // namespace ams
