#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/simd.hpp"
#include "tensor/gemm_kernels.hpp"

namespace ams {

namespace {

// One ledger entry per public entry point, outside every loop: the
// off-mode cost is two predicted branches per *call*, which is what
// keeps the AMSNET_TRACE=off GEMM hot loop within the <1% overhead
// contract (bench_trace_overhead).
inline void count_gemm(std::size_t m, std::size_t k, std::size_t n) {
    runtime::metrics::add(runtime::metrics::Counter::kGemmCalls);
    runtime::metrics::add(runtime::metrics::Counter::kGemmFlops,
                          2ull * static_cast<std::uint64_t>(m) * k * n);
}

// Block sizes tuned for a typical 32 KiB L1 / 1 MiB L2; exact values are
// not critical at our problem sizes.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockK = 256;
constexpr std::size_t kBlockN = 256;

// Below this many MACs the parallel_for dispatch costs more than the
// multiply; run the row loop inline.
constexpr std::size_t kParallelMacThreshold = 1u << 15;

// Rows of C are independent, so any [row_begin, row_end) slice of the
// blocked kernel computes each of its rows with exactly the same k/j
// summation order as the full serial kernel — row-parallel execution is
// bit-identical at any thread count.
void gemm_rows_accumulate(const float* a, const float* b, float* c,
                          std::size_t row_begin, std::size_t row_end,
                          std::size_t k, std::size_t n) {
    for (std::size_t i0 = row_begin; i0 < row_end; i0 += kBlockM) {
        const std::size_t i_end = std::min(i0 + kBlockM, row_end);
        for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
            const std::size_t k_end = std::min(k0 + kBlockK, k);
            for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
                const std::size_t j_end = std::min(j0 + kBlockN, n);
                for (std::size_t i = i0; i < i_end; ++i) {
                    float* crow = c + i * n;
                    for (std::size_t kk = k0; kk < k_end; ++kk) {
                        const float aik = a[i * k + kk];
                        const float* brow = b + kk * n;
                        for (std::size_t j = j0; j < j_end; ++j) {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }
}

std::size_t gemm_row_grain(std::size_t m, std::size_t k, std::size_t n) {
    // Keep chunks worth at least the dispatch threshold each.
    const std::size_t min_rows =
        std::max<std::size_t>(1, kParallelMacThreshold / std::max<std::size_t>(1, k * n));
    return runtime::suggest_grain(m, min_rows);
}

}  // namespace

void gemm_accumulate(const float* a, const float* b, float* c,
                     std::size_t m, std::size_t k, std::size_t n, GemmPackBuffers* pack) {
    count_gemm(m, k, n);
#if defined(AMSNET_HAVE_AVX2)
    if (simd::active_level() == simd::Level::kAvx2) {
        kernels::gemm_avx2(a, b, c, m, k, n, /*accumulate=*/true, /*a_transposed=*/false,
                           pack);
        return;
    }
#endif
    (void)pack;
    if (m * k * n < kParallelMacThreshold) {
        gemm_rows_accumulate(a, b, c, 0, m, k, n);
        return;
    }
    runtime::parallel_for(0, m, gemm_row_grain(m, k, n),
                          [&](std::size_t r0, std::size_t r1) {
                              gemm_rows_accumulate(a, b, c, r0, r1, k, n);
                          });
}

namespace {

/// Uncounted body of gemm(): shared by the public entry point and the
/// scalar gemm_at path, so transposed calls hit the ledger exactly once.
void gemm_impl(const float* a, const float* b, float* c,
               std::size_t m, std::size_t k, std::size_t n, GemmPackBuffers* pack) {
#if defined(AMSNET_HAVE_AVX2)
    if (simd::active_level() == simd::Level::kAvx2) {
        kernels::gemm_avx2(a, b, c, m, k, n, /*accumulate=*/false, /*a_transposed=*/false,
                           pack);
        return;
    }
#endif
    (void)pack;
    if (m * k * n < kParallelMacThreshold) {
        std::memset(c, 0, m * n * sizeof(float));
        gemm_rows_accumulate(a, b, c, 0, m, k, n);
        return;
    }
    runtime::parallel_for(0, m, gemm_row_grain(m, k, n),
                          [&](std::size_t r0, std::size_t r1) {
                              std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
                              gemm_rows_accumulate(a, b, c, r0, r1, k, n);
                          });
}

}  // namespace

void gemm(const float* a, const float* b, float* c,
          std::size_t m, std::size_t k, std::size_t n, GemmPackBuffers* pack) {
    count_gemm(m, k, n);
    gemm_impl(a, b, c, m, k, n, pack);
}

void gemm_at(const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, GemmPackBuffers* pack) {
    count_gemm(m, k, n);
#if defined(AMSNET_HAVE_AVX2)
    if (simd::active_level() == simd::Level::kAvx2) {
        // The packed path reads the KxM layout directly while packing A
        // panels — no transpose scratch at all.
        kernels::gemm_avx2(a, b, c, m, k, n, /*accumulate=*/false, /*a_transposed=*/true,
                           pack);
        return;
    }
#endif
    // A is stored KxM; transpose into a scratch MxK buffer, then reuse the
    // blocked kernel. The transpose is O(MK) against the O(MKN) multiply.
    // The scratch is reused across calls (thread-local or caller-provided)
    // instead of a per-call heap vector, so the backward path — which
    // lands here once per image — stays allocation-free in steady state.
    GemmPackBuffers& pb = pack != nullptr ? *pack : tls_pack_buffers();
    float* at = pb.ensure(GemmPackBuffers::kTranspose, m * k);
    runtime::parallel_for(0, k, runtime::suggest_grain(k, 64),
                          [&](std::size_t k0, std::size_t k1) {
                              for (std::size_t kk = k0; kk < k1; ++kk) {
                                  for (std::size_t i = 0; i < m; ++i) {
                                      at[i * k + kk] = a[kk * m + i];
                                  }
                              }
                          });
    gemm_impl(at, b, c, m, k, n, pack);
}

void gemm_bt(const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n, GemmPackBuffers* pack) {
    count_gemm(m, k, n);
#if defined(AMSNET_HAVE_AVX2)
    if (simd::active_level() == simd::Level::kAvx2) {
        kernels::gemm_bt_avx2(a, b, c, m, k, n, pack);
        return;
    }
#endif
    (void)pack;
    // B is stored NxK. Dot-product formulation keeps both operands
    // streaming; rows of C are independent.
    auto rows = [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
            const float* arow = a + i * k;
            for (std::size_t j = 0; j < n; ++j) {
                const float* brow = b + j * k;
                float acc = 0.0f;
                for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
                c[i * n + j] = acc;
            }
        }
    };
    if (m * k * n < kParallelMacThreshold) {
        rows(0, m);
        return;
    }
    runtime::parallel_for(0, m, gemm_row_grain(m, k, n), rows);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
    if (a.rank() != 2 || b.rank() != 2) {
        throw std::invalid_argument("matmul: expects rank-2 tensors, got " + a.shape().str() +
                                    " and " + b.shape().str());
    }
    const std::size_t m = a.dim(0), k = a.dim(1);
    if (b.dim(0) != k) {
        throw std::invalid_argument("matmul: inner dimension mismatch " + a.shape().str() +
                                    " vs " + b.shape().str());
    }
    const std::size_t n = b.dim(1);
    Tensor c(Shape{m, n});
    gemm(a.data(), b.data(), c.data(), m, k, n);
    return c;
}

}  // namespace ams
