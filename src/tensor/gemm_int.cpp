#include "tensor/gemm_int.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/simd.hpp"

namespace ams {

const char* gemm_int_mode_name(GemmIntMode mode) {
    switch (mode) {
        case GemmIntMode::kInt8: return "int8";
        case GemmIntMode::kInt16: return "int16";
        case GemmIntMode::kAuto: return "auto";
        case GemmIntMode::kOff: break;
    }
    return "off";
}

GemmIntMode parse_gemm_int_mode(const char* text) {
    if (text == nullptr || *text == '\0') return GemmIntMode::kOff;
    if (std::strcmp(text, "int8") == 0) return GemmIntMode::kInt8;
    if (std::strcmp(text, "int16") == 0) return GemmIntMode::kInt16;
    if (std::strcmp(text, "auto") == 0) return GemmIntMode::kAuto;
    return GemmIntMode::kOff;
}

GemmIntMode env_gemm_int_mode() { return parse_gemm_int_mode(std::getenv("AMSNET_GEMM_INT")); }

namespace {

// Same ledger discipline as the fp32 entry points: one entry per call,
// outside every loop. Integer calls are kept out of kGemmCalls so the
// two domains stay separately countable; the flop ledger is shared
// (work is work).
inline void count_gemm_int(std::size_t m, std::size_t k, std::size_t n) {
    runtime::metrics::add(runtime::metrics::Counter::kGemmIntCalls);
    runtime::metrics::add(runtime::metrics::Counter::kGemmFlops,
                          2ull * static_cast<std::uint64_t>(m) * k * n);
}

// Same inline threshold / row-grain policy as the fp32 driver.
constexpr std::size_t kParallelMacThreshold = 1u << 15;

std::size_t gemm_row_grain(std::size_t m, std::size_t k, std::size_t n) {
    const std::size_t min_rows =
        std::max<std::size_t>(1, kParallelMacThreshold / std::max<std::size_t>(1, k * n));
    return runtime::suggest_grain(m, min_rows);
}

// Scalar reference arms. Row-parallel slices reproduce the serial
// result exactly: integer accumulation is associative, so unlike the
// fp32 kernels there is nothing chunking could perturb.
void gemm_s8u8_rows_scalar(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c,
                           std::size_t row_begin, std::size_t row_end, std::size_t k,
                           std::size_t n) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
        std::int32_t* crow = c + i * n;
        std::memset(crow, 0, n * sizeof(std::int32_t));
        for (std::size_t kk = 0; kk < k; ++kk) {
            const std::int32_t aik = a[i * k + kk];
            if (aik == 0) continue;
            const std::uint8_t* brow = b + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
    }
}

void gemm_s16_rows_scalar(const std::int16_t* a, const std::int16_t* b, std::int32_t* c,
                          std::size_t row_begin, std::size_t row_end, std::size_t k,
                          std::size_t n) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
        std::int32_t* crow = c + i * n;
        std::memset(crow, 0, n * sizeof(std::int32_t));
        for (std::size_t kk = 0; kk < k; ++kk) {
            const std::int32_t aik = a[i * k + kk];
            if (aik == 0) continue;
            const std::int16_t* brow = b + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
    }
}

template <typename RowsFn>
void run_rows(std::size_t m, std::size_t k, std::size_t n, RowsFn&& rows) {
    if (m * k * n < kParallelMacThreshold) {
        rows(std::size_t{0}, m);
        return;
    }
    runtime::parallel_for(0, m, gemm_row_grain(m, k, n), rows);
}

}  // namespace

namespace kernels {

void pack_b_i8(const std::uint8_t* b, std::size_t k, std::size_t n, std::uint8_t* panel) {
    const std::size_t k4 = round_up_pow2(k, 4);
    const std::size_t groups = (n + kIntNr - 1) / kIntNr;
    for (std::size_t g = 0; g < groups; ++g) {
        std::uint8_t* out = panel + g * k4 * kIntNr;
        const std::size_t cols = std::min(kIntNr, n - g * kIntNr);
        std::size_t kb = 0;
#if defined(__SSE2__)
        // Full 8-column groups with four in-range k rows are a 4x8 byte
        // transpose: two byte interleaves then two word interleaves put
        // byte c of row t at out[c * 4 + t].
        if (cols == kIntNr) {
            const std::uint8_t* src = b + g * kIntNr;
            for (; (kb + 1) * 4 <= k; ++kb) {
                const std::size_t kk = kb * 4;
                const __m128i r0 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i*>(src + (kk + 0) * n));
                const __m128i r1 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i*>(src + (kk + 1) * n));
                const __m128i r2 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i*>(src + (kk + 2) * n));
                const __m128i r3 = _mm_loadl_epi64(
                    reinterpret_cast<const __m128i*>(src + (kk + 3) * n));
                const __m128i i01 = _mm_unpacklo_epi8(r0, r1);
                const __m128i i23 = _mm_unpacklo_epi8(r2, r3);
                _mm_storeu_si128(reinterpret_cast<__m128i*>(out + kb * 32),
                                 _mm_unpacklo_epi16(i01, i23));
                _mm_storeu_si128(reinterpret_cast<__m128i*>(out + kb * 32 + 16),
                                 _mm_unpackhi_epi16(i01, i23));
            }
        }
#endif
        for (; kb * 4 < k4; ++kb) {
            for (std::size_t c = 0; c < kIntNr; ++c) {
                for (std::size_t t = 0; t < 4; ++t) {
                    const std::size_t kk = kb * 4 + t;
                    out[kb * 32 + c * 4 + t] =
                        (c < cols && kk < k) ? b[kk * n + g * kIntNr + c] : 0;
                }
            }
        }
    }
}

void pack_b_i16(const std::int16_t* b, std::size_t k, std::size_t n, std::int16_t* panel) {
    const std::size_t k2 = round_up_pow2(k, 2);
    const std::size_t groups = (n + kIntNr - 1) / kIntNr;
    for (std::size_t g = 0; g < groups; ++g) {
        std::int16_t* out = panel + g * k2 * kIntNr;
        const std::size_t cols = std::min(kIntNr, n - g * kIntNr);
        std::size_t kb = 0;
#if defined(__SSE2__)
        // Full groups interleave two k rows word-wise: word c of row t
        // lands at out[c * 2 + t].
        if (cols == kIntNr) {
            const std::int16_t* src = b + g * kIntNr;
            for (; (kb + 1) * 2 <= k; ++kb) {
                const std::size_t kk = kb * 2;
                const __m128i r0 =
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + (kk + 0) * n));
                const __m128i r1 =
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + (kk + 1) * n));
                _mm_storeu_si128(reinterpret_cast<__m128i*>(out + kb * 16),
                                 _mm_unpacklo_epi16(r0, r1));
                _mm_storeu_si128(reinterpret_cast<__m128i*>(out + kb * 16 + 8),
                                 _mm_unpackhi_epi16(r0, r1));
            }
        }
#endif
        for (; kb * 2 < k2; ++kb) {
            for (std::size_t c = 0; c < kIntNr; ++c) {
                for (std::size_t t = 0; t < 2; ++t) {
                    const std::size_t kk = kb * 2 + t;
                    out[kb * 16 + c * 2 + t] =
                        (c < cols && kk < k) ? b[kk * n + g * kIntNr + c] : 0;
                }
            }
        }
    }
}

void pack_a_i8(const std::int8_t* a, std::size_t rows, std::size_t k, std::int8_t* strip) {
    const std::size_t k4 = round_up_pow2(k, 4);
    // The strip keeps each row's 4-code k block contiguous, so a full
    // tile is plain 4-byte chunk copies; only the ragged k/row tail
    // needs the per-element zero-padding loop.
    std::size_t kb = 0;
    if (rows == kIntMr) {
        for (; (kb + 1) * 4 <= k; ++kb) {
            for (std::size_t r = 0; r < kIntMr; ++r) {
                std::memcpy(strip + kb * 16 + r * 4, a + r * k + kb * 4, 4);
            }
        }
    }
    for (; kb * 4 < k4; ++kb) {
        for (std::size_t r = 0; r < kIntMr; ++r) {
            for (std::size_t t = 0; t < 4; ++t) {
                const std::size_t kk = kb * 4 + t;
                strip[kb * 16 + r * 4 + t] = (r < rows && kk < k) ? a[r * k + kk] : 0;
            }
        }
    }
}

void pack_a_i16(const std::int16_t* a, std::size_t rows, std::size_t k, std::int16_t* strip) {
    const std::size_t k2 = round_up_pow2(k, 2);
    std::size_t kb = 0;
    if (rows == kIntMr) {
        for (; (kb + 1) * 2 <= k; ++kb) {
            for (std::size_t r = 0; r < kIntMr; ++r) {
                std::memcpy(strip + kb * 8 + r * 2, a + r * k + kb * 2, 4);
            }
        }
    }
    for (; kb * 2 < k2; ++kb) {
        for (std::size_t r = 0; r < kIntMr; ++r) {
            for (std::size_t t = 0; t < 2; ++t) {
                const std::size_t kk = kb * 2 + t;
                strip[kb * 8 + r * 2 + t] = (r < rows && kk < k) ? a[r * k + kk] : 0;
            }
        }
    }
}

}  // namespace kernels

void gemm_s8u8(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c, std::size_t m,
               std::size_t k, std::size_t n, GemmPackBuffers* pack) {
    count_gemm_int(m, k, n);
#if defined(AMSNET_HAVE_SSE41)
    const simd::Level level = simd::active_level();
    if (simd::level_at_least(level, simd::Level::kSse41)) {
        GemmPackBuffers& pb = pack != nullptr ? *pack : tls_pack_buffers();
        auto* panel = reinterpret_cast<std::uint8_t*>(
            pb.ensure(GemmPackBuffers::kPackB, packed_b_i8_floats(k, n)));
        kernels::pack_b_i8(b, k, n, panel);
        run_rows(m, k, n, [&](std::size_t r0, std::size_t r1) {
#if defined(AMSNET_HAVE_AVX2)
            if (level == simd::Level::kAvx2) {
                kernels::gemm_s8u8_rows_avx2(a, panel, c, r0, r1, k, n);
                return;
            }
#endif
            kernels::gemm_s8u8_rows_sse41(a, panel, c, r0, r1, k, n);
        });
        return;
    }
#endif
    (void)pack;
    run_rows(m, k, n, [&](std::size_t r0, std::size_t r1) {
        gemm_s8u8_rows_scalar(a, b, c, r0, r1, k, n);
    });
}

void gemm_s16(const std::int16_t* a, const std::int16_t* b, std::int32_t* c, std::size_t m,
              std::size_t k, std::size_t n, GemmPackBuffers* pack) {
    count_gemm_int(m, k, n);
#if defined(AMSNET_HAVE_SSE41)
    const simd::Level level = simd::active_level();
    if (simd::level_at_least(level, simd::Level::kSse41)) {
        GemmPackBuffers& pb = pack != nullptr ? *pack : tls_pack_buffers();
        auto* panel = reinterpret_cast<std::int16_t*>(
            pb.ensure(GemmPackBuffers::kPackB, packed_b_i16_floats(k, n)));
        kernels::pack_b_i16(b, k, n, panel);
        run_rows(m, k, n, [&](std::size_t r0, std::size_t r1) {
#if defined(AMSNET_HAVE_AVX2)
            if (level == simd::Level::kAvx2) {
                kernels::gemm_s16_rows_avx2(a, panel, c, r0, r1, k, n);
                return;
            }
#endif
            kernels::gemm_s16_rows_sse41(a, panel, c, r0, r1, k, n);
        });
        return;
    }
#endif
    (void)pack;
    run_rows(m, k, n, [&](std::size_t r0, std::size_t r1) {
        gemm_s16_rows_scalar(a, b, c, r0, r1, k, n);
    });
}

}  // namespace ams
