// Shape: dimension list and indexing arithmetic for dense row-major tensors.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace ams {

/// Describes the extents of an N-dimensional dense row-major tensor.
///
/// A Shape is an ordered list of dimension sizes. Rank-0 shapes are valid
/// and denote scalars (numel() == 1). All indexing in the library is
/// row-major: the last dimension varies fastest.
///
/// Dimensions are stored inline (no heap allocation) so that constructing
/// and copying shapes on the inference hot path never touches the
/// allocator; ranks above kMaxRank are rejected at construction.
class Shape {
public:
    /// Maximum supported rank. 8 covers everything the library builds
    /// (NCHW activations, OIHW weights, flattened GEMM operands) with room
    /// to spare.
    static constexpr std::size_t kMaxRank = 8;

    Shape() = default;
    Shape(std::initializer_list<std::size_t> dims) { assign(dims.begin(), dims.size()); }
    explicit Shape(const std::vector<std::size_t>& dims) { assign(dims.data(), dims.size()); }

    /// Number of dimensions (0 for a scalar shape).
    [[nodiscard]] std::size_t rank() const { return rank_; }

    /// Size of dimension `axis`; throws std::out_of_range if invalid.
    [[nodiscard]] std::size_t dim(std::size_t axis) const;

    /// Total number of elements (product of all dims; 1 for scalars).
    [[nodiscard]] std::size_t numel() const;

    /// Row-major strides, in elements. Empty for scalars.
    [[nodiscard]] std::vector<std::size_t> strides() const;

    /// Flat row-major offset of a multidimensional index.
    /// Throws std::invalid_argument on rank mismatch or out-of-range index.
    [[nodiscard]] std::size_t offset(const std::vector<std::size_t>& index) const;

    /// Inline view of the dimension sizes (valid while the Shape lives).
    [[nodiscard]] std::span<const std::size_t> dims() const { return {dims_.data(), rank_}; }

    /// Human-readable form, e.g. "[2, 3, 4]".
    [[nodiscard]] std::string str() const;

    friend bool operator==(const Shape& a, const Shape& b) {
        if (a.rank_ != b.rank_) return false;
        for (std::size_t i = 0; i < a.rank_; ++i) {
            if (a.dims_[i] != b.dims_[i]) return false;
        }
        return true;
    }
    friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

private:
    void assign(const std::size_t* dims, std::size_t count);

    std::array<std::size_t, kMaxRank> dims_{};
    std::size_t rank_ = 0;
};

}  // namespace ams
