// Shape: dimension vector and indexing arithmetic for dense row-major tensors.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace ams {

/// Describes the extents of an N-dimensional dense row-major tensor.
///
/// A Shape is an ordered list of dimension sizes. Rank-0 shapes are valid
/// and denote scalars (numel() == 1). All indexing in the library is
/// row-major: the last dimension varies fastest.
class Shape {
public:
    Shape() = default;
    Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
    explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

    /// Number of dimensions (0 for a scalar shape).
    [[nodiscard]] std::size_t rank() const { return dims_.size(); }

    /// Size of dimension `axis`; throws std::out_of_range if invalid.
    [[nodiscard]] std::size_t dim(std::size_t axis) const { return dims_.at(axis); }

    /// Total number of elements (product of all dims; 1 for scalars).
    [[nodiscard]] std::size_t numel() const;

    /// Row-major strides, in elements. Empty for scalars.
    [[nodiscard]] std::vector<std::size_t> strides() const;

    /// Flat row-major offset of a multidimensional index.
    /// Throws std::invalid_argument on rank mismatch or out-of-range index.
    [[nodiscard]] std::size_t offset(const std::vector<std::size_t>& index) const;

    [[nodiscard]] const std::vector<std::size_t>& dims() const { return dims_; }

    /// Human-readable form, e.g. "[2, 3, 4]".
    [[nodiscard]] std::string str() const;

    friend bool operator==(const Shape& a, const Shape& b) { return a.dims_ == b.dims_; }
    friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

private:
    std::vector<std::size_t> dims_;
};

}  // namespace ams
