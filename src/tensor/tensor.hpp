// Tensor: dense row-major N-dimensional array of float with value semantics.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"
#include "tensor/rng.hpp"
#include "tensor/shape.hpp"

namespace ams {

/// Dense row-major N-dimensional float array.
///
/// Tensors have value semantics: copies are deep, moves are cheap. The
/// storage is normally a contiguous owned buffer; a tensor can also
/// *borrow* externally managed memory (see `borrowed`), which is how the
/// zero-allocation inference path hands out arena-backed outputs. Copying
/// a borrowed tensor yields an independent owned deep copy, so value
/// semantics hold regardless of where the bytes live. The library
/// deliberately avoids strided views; operations that need a sub-range
/// copy it. This keeps every kernel simple and cache-friendly.
class Tensor {
public:
    /// Owned heap storage is aligned to 64 bytes (cache line / AVX-512),
    /// matching the arena guarantee so SIMD kernels see the same
    /// alignment on every storage class.
    static constexpr std::size_t kAlignment = 64;
    using Storage = std::vector<float, AlignedAllocator<float, kAlignment>>;

    /// Empty tensor: rank 0, nothing allocated; numel()==0.
    Tensor() = default;

    /// Allocates a tensor of `shape` filled with `fill`.
    explicit Tensor(Shape shape, float fill = 0.0f);

    /// Convenience: Tensor({2,3}) allocates a 2x3 zero tensor.
    Tensor(std::initializer_list<std::size_t> dims) : Tensor(Shape(dims)) {}

    Tensor(const Tensor& other);
    Tensor& operator=(const Tensor& other);
    Tensor(Tensor&& other) noexcept;
    Tensor& operator=(Tensor&& other) noexcept;
    ~Tensor() = default;

    /// Copies `data` into owned (aligned) storage; throws
    /// std::invalid_argument if sizes mismatch.
    static Tensor from_data(Shape shape, const std::vector<float>& data);

    /// Non-owning view over `shape.numel()` floats at `data`. The caller
    /// guarantees the memory outlives the tensor (arena rewind discipline).
    /// Copying the result produces an owned deep copy; moving keeps the
    /// borrow. Throws std::invalid_argument if data is null for a
    /// non-empty shape.
    static Tensor borrowed(Shape shape, float* data);

    /// True when this tensor owns its storage (empty tensors count as
    /// owning). Borrowed tensors return false.
    [[nodiscard]] bool owns_storage() const { return ptr_ == nullptr || !owned_.empty(); }

    [[nodiscard]] const Shape& shape() const { return shape_; }
    [[nodiscard]] std::size_t rank() const { return shape_.rank(); }
    [[nodiscard]] std::size_t dim(std::size_t axis) const { return shape_.dim(axis); }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    [[nodiscard]] float* data() { return ptr_; }
    [[nodiscard]] const float* data() const { return ptr_; }
    [[nodiscard]] std::span<float> values() { return {ptr_, size_}; }
    [[nodiscard]] std::span<const float> values() const { return {ptr_, size_}; }

    /// Flat (row-major) element access; no bounds check in release builds.
    float& operator[](std::size_t i) { return ptr_[i]; }
    float operator[](std::size_t i) const { return ptr_[i]; }

    /// Multi-index access with bounds checking.
    float& at(const std::vector<std::size_t>& index) { return ptr_[shape_.offset(index)]; }
    float at(const std::vector<std::size_t>& index) const { return ptr_[shape_.offset(index)]; }

    /// Returns a tensor with the same data and a new shape.
    /// Throws std::invalid_argument if the element counts differ.
    [[nodiscard]] Tensor reshaped(Shape new_shape) const&;
    [[nodiscard]] Tensor reshaped(Shape new_shape) &&;

    /// In-place fills.
    void fill(float value);
    void zero() { fill(0.0f); }

    /// In-place elementwise transform.
    void apply(const std::function<float(float)>& fn);

    /// In-place random fills.
    void fill_uniform(Rng& rng, float lo, float hi);
    void fill_normal(Rng& rng, float mean, float stddev);

    /// Kaiming-He normal initialization: stddev = sqrt(2 / fan_in).
    void fill_he_normal(Rng& rng, std::size_t fan_in);

    // ----- in-place arithmetic (shapes must match exactly) -----
    Tensor& operator+=(const Tensor& other);
    Tensor& operator-=(const Tensor& other);
    Tensor& operator*=(const Tensor& other);  ///< elementwise (Hadamard)
    Tensor& operator+=(float s);
    Tensor& operator*=(float s);

    // ----- reductions -----
    [[nodiscard]] float sum() const;
    [[nodiscard]] float mean() const;
    /// Population variance (divides by N).
    [[nodiscard]] float variance() const;
    [[nodiscard]] float min() const;  ///< throws std::logic_error when empty
    [[nodiscard]] float max() const;  ///< throws std::logic_error when empty
    [[nodiscard]] float abs_max() const;
    /// Index of the first maximum element; throws std::logic_error when empty.
    [[nodiscard]] std::size_t argmax() const;

private:
    Shape shape_{};
    Storage owned_;              ///< empty when borrowed or default-constructed
    float* ptr_ = nullptr;       ///< owned_.data() when owning, external otherwise
    std::size_t size_ = 0;
};

/// Elementwise binary ops; throw std::invalid_argument on shape mismatch.
[[nodiscard]] Tensor operator+(Tensor a, const Tensor& b);
[[nodiscard]] Tensor operator-(Tensor a, const Tensor& b);
[[nodiscard]] Tensor operator*(Tensor a, const Tensor& b);
[[nodiscard]] Tensor operator*(Tensor a, float s);
[[nodiscard]] Tensor operator*(float s, Tensor a);

/// Throws std::invalid_argument unless both shapes match.
void check_same_shape(const Tensor& a, const Tensor& b, const char* what);

}  // namespace ams
