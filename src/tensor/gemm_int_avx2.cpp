// 256-bit integer GEMM arms (vpmaddubsw / vpmaddwd), compiled with
// -mavx2 -mfma and only called behind cpu_supports_avx2_fma(). Consumes
// the same packed panels as the SSE4.1 arm: one 32-byte block is exactly
// a panel group's 8 columns x 4 int8 k-codes (or 8 x 2 int16), and the
// per-128-bit-lane semantics of vpmaddubsw/vpmaddwd match the layout
// (low lane = columns 0-3, high lane = columns 4-7), so after the
// horizontal folds each of the 8 i32 lanes is one column in order.
// Identical exact-integer results to the other two arms.
#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "tensor/gemm_int.hpp"

namespace ams::kernels {

namespace {

float* strip_scratch(std::size_t bytes) {
    return tls_pack_buffers().ensure(GemmPackBuffers::kPackA, (bytes + 3) / 4);
}

inline void store_cols(std::int32_t* crow, const __m256i acc, std::size_t cols) {
    if (cols == kIntNr) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), acc);
        return;
    }
    alignas(32) std::int32_t tmp[kIntNr];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc);
    std::memcpy(crow, tmp, cols * sizeof(std::int32_t));
}

}  // namespace

void gemm_s8u8_rows_avx2(const std::int8_t* a, const std::uint8_t* panel, std::int32_t* c,
                         std::size_t row_begin, std::size_t row_end, std::size_t k,
                         std::size_t n) {
    const std::size_t k4 = round_up_pow2(k, 4);
    const std::size_t blocks = k4 / 4;
    const std::size_t groups = (n + kIntNr - 1) / kIntNr;
    auto* strip = reinterpret_cast<std::int8_t*>(strip_scratch(kIntMr * k4));
    const __m256i ones = _mm256_set1_epi16(1);
    for (std::size_t i0 = row_begin; i0 < row_end; i0 += kIntMr) {
        const std::size_t rows = std::min(kIntMr, row_end - i0);
        pack_a_i8(a + i0 * k, rows, k, strip);
        const auto* strip32 = reinterpret_cast<const std::int32_t*>(strip);
        // Two panel groups per pass: 8 independent accumulator chains
        // hide the madd latency the 4-chain single-group loop exposes,
        // and each A broadcast feeds both groups.
        std::size_t g = 0;
        for (; g + 2 <= groups; g += 2) {
            const std::uint8_t* bp0 = panel + g * k4 * kIntNr;
            const std::uint8_t* bp1 = bp0 + k4 * kIntNr;
            __m256i acc0[kIntMr];
            __m256i acc1[kIntMr];
            for (std::size_t r = 0; r < kIntMr; ++r) {
                acc0[r] = _mm256_setzero_si256();
                acc1[r] = _mm256_setzero_si256();
            }
            for (std::size_t kb = 0; kb < blocks; ++kb) {
                const __m256i b0 =
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp0 + kb * 32));
                const __m256i b1 =
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp1 + kb * 32));
                for (std::size_t r = 0; r < kIntMr; ++r) {
                    const __m256i av = _mm256_set1_epi32(strip32[kb * kIntMr + r]);
                    acc0[r] = _mm256_add_epi32(
                        acc0[r], _mm256_madd_epi16(_mm256_maddubs_epi16(b0, av), ones));
                    acc1[r] = _mm256_add_epi32(
                        acc1[r], _mm256_madd_epi16(_mm256_maddubs_epi16(b1, av), ones));
                }
            }
            const std::size_t cols1 = std::min(kIntNr, n - (g + 1) * kIntNr);
            for (std::size_t r = 0; r < rows; ++r) {
                store_cols(c + (i0 + r) * n + g * kIntNr, acc0[r], kIntNr);
                store_cols(c + (i0 + r) * n + (g + 1) * kIntNr, acc1[r], cols1);
            }
        }
        for (; g < groups; ++g) {
            const std::uint8_t* bp = panel + g * k4 * kIntNr;
            __m256i acc[kIntMr];
            for (auto& row_acc : acc) row_acc = _mm256_setzero_si256();
            for (std::size_t kb = 0; kb < blocks; ++kb) {
                const __m256i b0 =
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + kb * 32));
                for (std::size_t r = 0; r < kIntMr; ++r) {
                    const __m256i av = _mm256_set1_epi32(strip32[kb * kIntMr + r]);
                    acc[r] = _mm256_add_epi32(
                        acc[r], _mm256_madd_epi16(_mm256_maddubs_epi16(b0, av), ones));
                }
            }
            const std::size_t cols = std::min(kIntNr, n - g * kIntNr);
            for (std::size_t r = 0; r < rows; ++r) {
                store_cols(c + (i0 + r) * n + g * kIntNr, acc[r], cols);
            }
        }
    }
}

void gemm_s16_rows_avx2(const std::int16_t* a, const std::int16_t* panel, std::int32_t* c,
                        std::size_t row_begin, std::size_t row_end, std::size_t k,
                        std::size_t n) {
    const std::size_t k2 = round_up_pow2(k, 2);
    const std::size_t blocks = k2 / 2;
    const std::size_t groups = (n + kIntNr - 1) / kIntNr;
    auto* strip = reinterpret_cast<std::int16_t*>(strip_scratch(kIntMr * k2 * 2));
    for (std::size_t i0 = row_begin; i0 < row_end; i0 += kIntMr) {
        const std::size_t rows = std::min(kIntMr, row_end - i0);
        pack_a_i16(a + i0 * k, rows, k, strip);
        const auto* strip32 = reinterpret_cast<const std::int32_t*>(strip);
        for (std::size_t g = 0; g < groups; ++g) {
            const std::int16_t* bp = panel + g * k2 * kIntNr;
            __m256i acc[kIntMr];
            for (auto& row_acc : acc) row_acc = _mm256_setzero_si256();
            for (std::size_t kb = 0; kb < blocks; ++kb) {
                const __m256i b0 =
                    _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bp + kb * 16));
                for (std::size_t r = 0; r < kIntMr; ++r) {
                    const __m256i av = _mm256_set1_epi32(strip32[kb * kIntMr + r]);
                    acc[r] = _mm256_add_epi32(acc[r], _mm256_madd_epi16(b0, av));
                }
            }
            const std::size_t cols = std::min(kIntNr, n - g * kIntNr);
            for (std::size_t r = 0; r < rows; ++r) {
                store_cols(c + (i0 + r) * n + g * kIntNr, acc[r], cols);
            }
        }
    }
}

}  // namespace ams::kernels
