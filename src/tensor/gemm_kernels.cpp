#include "tensor/gemm_kernels.hpp"

#include <vector>

#include "runtime/metrics.hpp"

namespace ams {

namespace {

/// Fallback pack storage: one set per thread, grown geometrically so a
/// steady-state workload (the training loop, the legacy eval path, the
/// backward pass) stops touching the heap after warm-up.
class TlsPackBuffers final : public GemmPackBuffers {
public:
    [[nodiscard]] float* ensure(int which, std::size_t floats) override {
        std::vector<float>& buf = slots_[which == kPackA ? 0 : (which == kPackB ? 1 : 2)];
        if (buf.size() < floats) {
            // Geometric growth: shape jitter (last partial batch, probe
            // shapes) settles after a few calls instead of reallocating
            // on every alternation.
            std::size_t cap = buf.size() == 0 ? 256 : buf.size();
            while (cap < floats) cap *= 2;
            buf.resize(cap);
            // Growth should go quiet after warm-up; a counter that keeps
            // climbing in steady state flags a shape-jitter regression.
            runtime::metrics::add(runtime::metrics::Counter::kGemmPackGrowths);
        }
        return buf.data();
    }

private:
    std::vector<float> slots_[3];
};

}  // namespace

GemmPackBuffers& tls_pack_buffers() {
    thread_local TlsPackBuffers buffers;
    return buffers;
}

}  // namespace ams
