// Binary serialization for tensors and named tensor maps (checkpoints).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "tensor/tensor.hpp"

namespace ams {

/// Writes `t` to `os` in the amsnet binary format (magic, rank, dims, data).
/// Throws std::runtime_error on stream failure.
void save_tensor(std::ostream& os, const Tensor& t);

/// Reads a tensor previously written by save_tensor.
/// Throws std::runtime_error on malformed input or stream failure.
[[nodiscard]] Tensor load_tensor(std::istream& is);

/// Ordered name -> tensor map used for model checkpoints.
using TensorMap = std::map<std::string, Tensor>;

/// Writes a named tensor map (count, then name-length/name/tensor records).
void save_tensor_map(std::ostream& os, const TensorMap& tensors);

/// Reads a map written by save_tensor_map.
[[nodiscard]] TensorMap load_tensor_map(std::istream& is);

/// File-path conveniences; throw std::runtime_error if the file cannot be
/// opened or parsed.
void save_tensor_map_file(const std::string& path, const TensorMap& tensors);
[[nodiscard]] TensorMap load_tensor_map_file(const std::string& path);

}  // namespace ams
