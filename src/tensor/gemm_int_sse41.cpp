// 128-bit integer GEMM arms (SSSE3 pmaddubsw / SSE2 pmaddwd), compiled
// with -mssse3 -msse4.1 and only ever called behind cpu_supports_sse41().
//
// int8 microkernel (4 rows x 8 columns x 4 k per step):
//   * B panel block: 32 bytes = 8 columns x 4 k-codes (pack_b_i8);
//     one XMM load covers columns 0-3, the next columns 4-7.
//   * A strip: 4 k-codes per row, broadcast with _mm_set1_epi32.
//   * pmaddubsw(b, a) multiplies unsigned B bytes by signed A bytes and
//     sums adjacent pairs into i16 — never saturating because both code
//     magnitudes are <= 127 (2 * 127^2 < 2^15). pmaddwd against 1s then
//     folds the two i16 halves into one i32 per column: each instruction
//     pair contributes a column's 4-k partial dot, accumulated exactly.
//
// int16 microkernel (4 rows x 8 columns x 2 k per step): pmaddwd on
// (column-interleaved B, broadcast A k-pair) directly yields one i32 per
// column; |codes| <= 32767 means the -32768 * -32768 overflow case of
// pmaddwd cannot occur.
//
// All arithmetic is exact integer addition, so any row partition and any
// of the three arms produce bit-identical accumulators.
#include <smmintrin.h>

#include <algorithm>
#include <cstring>

#include "tensor/gemm_int.hpp"

namespace ams::kernels {

namespace {

/// Thread-local A-strip scratch: kIntMr rows of round_up(k, 4) int8
/// codes (the i16 variant needs 2x the bytes; one helper serves both).
float* strip_scratch(std::size_t bytes) {
    return tls_pack_buffers().ensure(GemmPackBuffers::kPackA, (bytes + 3) / 4);
}

inline void store_cols(std::int32_t* crow, const __m128i lo, const __m128i hi,
                       std::size_t cols) {
    if (cols == kIntNr) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(crow), lo);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(crow + 4), hi);
        return;
    }
    alignas(16) std::int32_t tmp[kIntNr];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), lo);
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp + 4), hi);
    std::memcpy(crow, tmp, cols * sizeof(std::int32_t));
}

}  // namespace

void gemm_s8u8_rows_sse41(const std::int8_t* a, const std::uint8_t* panel, std::int32_t* c,
                          std::size_t row_begin, std::size_t row_end, std::size_t k,
                          std::size_t n) {
    const std::size_t k4 = round_up_pow2(k, 4);
    const std::size_t blocks = k4 / 4;
    const std::size_t groups = (n + kIntNr - 1) / kIntNr;
    auto* strip = reinterpret_cast<std::int8_t*>(strip_scratch(kIntMr * k4));
    const __m128i ones = _mm_set1_epi16(1);
    for (std::size_t i0 = row_begin; i0 < row_end; i0 += kIntMr) {
        const std::size_t rows = std::min(kIntMr, row_end - i0);
        pack_a_i8(a + i0 * k, rows, k, strip);
        const auto* strip32 = reinterpret_cast<const std::int32_t*>(strip);
        for (std::size_t g = 0; g < groups; ++g) {
            const std::uint8_t* bp = panel + g * k4 * kIntNr;
            __m128i acc[kIntMr][2];
            for (auto& row_acc : acc) row_acc[0] = row_acc[1] = _mm_setzero_si128();
            for (std::size_t kb = 0; kb < blocks; ++kb) {
                const __m128i b0 =
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + kb * 32));
                const __m128i b1 =
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + kb * 32 + 16));
                for (std::size_t r = 0; r < kIntMr; ++r) {
                    const __m128i av = _mm_set1_epi32(strip32[kb * kIntMr + r]);
                    acc[r][0] = _mm_add_epi32(
                        acc[r][0], _mm_madd_epi16(_mm_maddubs_epi16(b0, av), ones));
                    acc[r][1] = _mm_add_epi32(
                        acc[r][1], _mm_madd_epi16(_mm_maddubs_epi16(b1, av), ones));
                }
            }
            const std::size_t cols = std::min(kIntNr, n - g * kIntNr);
            for (std::size_t r = 0; r < rows; ++r) {
                store_cols(c + (i0 + r) * n + g * kIntNr, acc[r][0], acc[r][1], cols);
            }
        }
    }
}

void gemm_s16_rows_sse41(const std::int16_t* a, const std::int16_t* panel, std::int32_t* c,
                         std::size_t row_begin, std::size_t row_end, std::size_t k,
                         std::size_t n) {
    const std::size_t k2 = round_up_pow2(k, 2);
    const std::size_t blocks = k2 / 2;
    const std::size_t groups = (n + kIntNr - 1) / kIntNr;
    auto* strip = reinterpret_cast<std::int16_t*>(strip_scratch(kIntMr * k2 * 2));
    for (std::size_t i0 = row_begin; i0 < row_end; i0 += kIntMr) {
        const std::size_t rows = std::min(kIntMr, row_end - i0);
        pack_a_i16(a + i0 * k, rows, k, strip);
        const auto* strip32 = reinterpret_cast<const std::int32_t*>(strip);
        for (std::size_t g = 0; g < groups; ++g) {
            const std::int16_t* bp = panel + g * k2 * kIntNr;
            __m128i acc[kIntMr][2];
            for (auto& row_acc : acc) row_acc[0] = row_acc[1] = _mm_setzero_si128();
            for (std::size_t kb = 0; kb < blocks; ++kb) {
                const __m128i b0 =
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + kb * 16));
                const __m128i b1 =
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + kb * 16 + 8));
                for (std::size_t r = 0; r < kIntMr; ++r) {
                    const __m128i av = _mm_set1_epi32(strip32[kb * kIntMr + r]);
                    acc[r][0] = _mm_add_epi32(acc[r][0], _mm_madd_epi16(b0, av));
                    acc[r][1] = _mm_add_epi32(acc[r][1], _mm_madd_epi16(b1, av));
                }
            }
            const std::size_t cols = std::min(kIntNr, n - g * kIntNr);
            for (std::size_t r = 0; r < rows; ++r) {
                store_cols(c + (i0 + r) * n + g * kIntNr, acc[r][0], acc[r][1], cols);
            }
        }
    }
}

}  // namespace ams::kernels
