// Register-blocked GEMM microkernels behind the runtime SIMD dispatch.
//
// The public gemm/gemm_accumulate/gemm_at/gemm_bt entry points
// (tensor/gemm.hpp) select between the legacy scalar blocked kernel
// (bit-exact with the pre-SIMD library, always available, forced with
// AMSNET_SIMD=off) and the packed AVX2/FMA path declared here.
//
// Geometry of the vector path (see DESIGN.md §10):
//
//   * B is packed once per call into column panels of width kNR = 16,
//     zero-padded to a multiple of 16 — K*round_up(N,16) floats.
//   * A is packed per 6-row panel (kMR = 6) into a K*6 interleaved strip
//     by the thread that consumes it; 6x16 FMA microkernel, 12 YMM
//     accumulators, full-K sweep per tile.
//   * Column tails use masked stores, row tails narrower microkernels;
//     either way each C element accumulates its K products in index
//     order in a private register lane, so results are bit-identical for
//     any row partition — parallel row-slicing cannot perturb numerics.
//
// Pack-buffer ownership: callers on the planned inference path route the
// (large) B panel through EvalContext scratch via EvalContextPackBuffers
// so steady-state passes stay allocation-free; everyone else falls back
// to thread-local storage (tls_pack_buffers). The small per-panel A
// strip is always thread-local — it is written inside parallel workers,
// where a shared buffer would race.
#pragma once

#include <cstddef>

#include "runtime/eval_context.hpp"
#include "runtime/simd.hpp"

namespace ams {

/// Scratch provider for the packed GEMM path. `ensure` returns a buffer
/// of at least `floats` floats for the given slot, stable until the next
/// ensure() of the same slot with a larger size.
class GemmPackBuffers {
public:
    /// Slot ids passed to ensure().
    enum Slot : int {
        kPackA = 0,      ///< per-panel A strip (thread-local only; never shared)
        kPackB = 1,      ///< packed B panels, K * round_up(N, 16) floats
        kTranspose = 2,  ///< A^T scratch for the scalar gemm_at arm, M*K floats
    };

    virtual ~GemmPackBuffers() = default;
    [[nodiscard]] virtual float* ensure(int which, std::size_t floats) = 0;
};

/// The calling thread's growable fallback buffers (plain heap vectors;
/// they only allocate when they grow, so steady-state reuse is free).
[[nodiscard]] GemmPackBuffers& tls_pack_buffers();

/// Adapter that parks pack buffers in an EvalContext's scratch arena,
/// keyed (owner, slot_base + which). Reserve the same keys during
/// plan()/pre-region warm-up when the adapter will be used inside a
/// parallel region: ensure() must then be a pure registry lookup.
class EvalContextPackBuffers final : public GemmPackBuffers {
public:
    EvalContextPackBuffers(runtime::EvalContext& ctx, const void* owner, int slot_base)
        : ctx_(&ctx), owner_(owner), slot_base_(slot_base) {}

    [[nodiscard]] float* ensure(int which, std::size_t floats) override {
        return ctx_->reserve_scratch(owner_, slot_base_ + which, floats);
    }

private:
    runtime::EvalContext* ctx_;
    const void* owner_;
    int slot_base_;
};

/// Floats needed for the packed-B panel of a (K x N) right-hand side.
[[nodiscard]] constexpr std::size_t packed_b_floats(std::size_t k, std::size_t n) {
    return k * ((n + 15) / 16) * 16;
}

namespace kernels {

/// C (MxN) = [+=] A * B on the AVX2/FMA arm. `a_transposed` reads A as
/// stored KxM (the gemm_at layout) directly during packing — no
/// transpose scratch. `pack` supplies the B panel (nullptr: thread-local).
void gemm_avx2(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate, bool a_transposed, GemmPackBuffers* pack);

/// C (MxN) = A (MxK) * B^T (stored NxK) on the AVX2/FMA arm; packs the
/// B panel straight from the transposed layout.
void gemm_bt_avx2(const float* a, const float* bt, float* c, std::size_t m, std::size_t k,
                  std::size_t n, GemmPackBuffers* pack);

}  // namespace kernels

}  // namespace ams
