// im2col / col2im lowering for convolution via GEMM.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.hpp"

namespace ams {

/// Geometry of a 2-D convolution over NCHW tensors.
struct ConvGeometry {
    std::size_t in_channels = 0;
    std::size_t in_h = 0;
    std::size_t in_w = 0;
    std::size_t kernel_h = 1;
    std::size_t kernel_w = 1;
    std::size_t stride_h = 1;
    std::size_t stride_w = 1;
    std::size_t pad_h = 0;
    std::size_t pad_w = 0;

    [[nodiscard]] std::size_t out_h() const {
        return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
    }
    [[nodiscard]] std::size_t out_w() const {
        return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
    }
    /// Rows of the lowered patch matrix: C_in * K_h * K_w.
    [[nodiscard]] std::size_t patch_size() const {
        return in_channels * kernel_h * kernel_w;
    }
    /// Throws std::invalid_argument if the geometry is degenerate
    /// (zero dims, kernel larger than padded input, zero stride).
    void validate() const;
};

/// Lowers one image (C,H,W, contiguous) into a (patch_size x out_h*out_w)
/// column matrix. Out-of-bounds (padding) taps are written as 0.
/// `columns` must hold geometry.patch_size() * out_h * out_w floats.
void im2col(const float* image, const ConvGeometry& g, float* columns);

/// Code-typed im2col twins for the integer GEMM path: identical
/// addressing to the float version, but over quantization codes. Padding
/// taps are written as code 0, which is exact because every grid the
/// integer path accepts places the value 0.0 at code 0 (zero-point 0).
/// Serial by design — the integer conv driver already parallelizes over
/// the batch around these calls.
void im2col_u8(const std::uint8_t* image, const ConvGeometry& g, std::uint8_t* columns);
void im2col_i16(const std::int16_t* image, const ConvGeometry& g, std::int16_t* columns);

/// Adjoint of im2col: scatters a column matrix back into an image buffer,
/// accumulating where patches overlap. `image` must be pre-zeroed by the
/// caller if a pure adjoint is wanted.
void col2im(const float* columns, const ConvGeometry& g, float* image);

/// The one shared im2col lowering used by every convolution path
/// (nn::Conv2d forward and backward, vmac::VmacConv2d, and the quantized
/// conv wrapper, which drives Conv2d). Owns no memory: callers provide
/// the column buffers — arena scratch on the planned eval path, reusable
/// member buffers on the training path — so the three formerly duplicated
/// lowerings share one geometry/addressing implementation.
class ConvLowering {
public:
    ConvLowering() = default;
    /// Throws std::invalid_argument if the geometry is degenerate.
    explicit ConvLowering(const ConvGeometry& g) : g_(g), oh_(0), ow_(0) {
        g_.validate();
        oh_ = g_.out_h();
        ow_ = g_.out_w();
    }

    [[nodiscard]] const ConvGeometry& geometry() const { return g_; }
    [[nodiscard]] std::size_t out_h() const { return oh_; }
    [[nodiscard]] std::size_t out_w() const { return ow_; }
    [[nodiscard]] std::size_t out_spatial() const { return oh_ * ow_; }
    [[nodiscard]] std::size_t patch_size() const { return g_.patch_size(); }
    /// Floats of one input image (C * H * W).
    [[nodiscard]] std::size_t image_floats() const {
        return g_.in_channels * g_.in_h * g_.in_w;
    }
    /// Floats of one image's column matrix (patch_size * out_spatial).
    [[nodiscard]] std::size_t columns_floats() const {
        return patch_size() * out_spatial();
    }

    /// Lowers image `b` of a contiguous NCHW batch into `columns`
    /// (columns_floats() floats).
    void lower_image(const float* batch, std::size_t b, float* columns) const {
        im2col(batch + b * image_floats(), g_, columns);
    }

    /// Lowers images [0, batch_size) into `columns`
    /// (batch_size * columns_floats() floats, image-major). Images are
    /// write-disjoint, so the loop parallelizes over the batch.
    void lower_batch(const float* batch, std::size_t batch_size, float* columns) const;

    /// Scatter-adjoint for image `b`: accumulates `columns` back into the
    /// image slice (caller pre-zeroes for a pure adjoint).
    void scatter_image(const float* columns, std::size_t b, float* batch) const {
        col2im(columns, g_, batch + b * image_floats());
    }

private:
    ConvGeometry g_{};
    std::size_t oh_ = 0;
    std::size_t ow_ = 0;
};

}  // namespace ams
