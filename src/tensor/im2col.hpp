// im2col / col2im lowering for convolution via GEMM.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace ams {

/// Geometry of a 2-D convolution over NCHW tensors.
struct ConvGeometry {
    std::size_t in_channels = 0;
    std::size_t in_h = 0;
    std::size_t in_w = 0;
    std::size_t kernel_h = 1;
    std::size_t kernel_w = 1;
    std::size_t stride_h = 1;
    std::size_t stride_w = 1;
    std::size_t pad_h = 0;
    std::size_t pad_w = 0;

    [[nodiscard]] std::size_t out_h() const {
        return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
    }
    [[nodiscard]] std::size_t out_w() const {
        return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
    }
    /// Rows of the lowered patch matrix: C_in * K_h * K_w.
    [[nodiscard]] std::size_t patch_size() const {
        return in_channels * kernel_h * kernel_w;
    }
    /// Throws std::invalid_argument if the geometry is degenerate
    /// (zero dims, kernel larger than padded input, zero stride).
    void validate() const;
};

/// Lowers one image (C,H,W, contiguous) into a (patch_size x out_h*out_w)
/// column matrix. Out-of-bounds (padding) taps are written as 0.
/// `columns` must hold geometry.patch_size() * out_h * out_w floats.
void im2col(const float* image, const ConvGeometry& g, float* columns);

/// Adjoint of im2col: scatters a column matrix back into an image buffer,
/// accumulating where patches overlap. `image` must be pre-zeroed by the
/// caller if a pure adjoint is wanted.
void col2im(const float* columns, const ConvGeometry& g, float* image);

}  // namespace ams
