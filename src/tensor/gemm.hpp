// Single-precision matrix multiplication kernels.
//
// These are the computational workhorse of the convolution (im2col + GEMM)
// and fully-connected layers. Two arms sit behind one runtime dispatch
// (runtime/simd.hpp): the legacy cache-blocked scalar kernel (always
// available, bit-exact with the pre-SIMD library, forced with
// AMSNET_SIMD=off) and a packed AVX2/FMA microkernel path
// (tensor/gemm_kernels.hpp). No external BLAS is required.
//
// The optional trailing `pack` argument supplies scratch for the packed
// path (and the scalar gemm_at transpose): pass an
// EvalContextPackBuffers on the planned inference path to keep
// steady-state passes allocation-free; nullptr falls back to
// thread-local buffers.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace ams {

class GemmPackBuffers;  // tensor/gemm_kernels.hpp

/// C (MxN) = A (MxK) * B (KxN). Row-major raw-pointer kernel.
/// `C` is overwritten. Aliasing between C and A/B is not allowed.
void gemm(const float* a, const float* b, float* c,
          std::size_t m, std::size_t k, std::size_t n,
          GemmPackBuffers* pack = nullptr);

/// C (MxN) += A (MxK) * B (KxN).
void gemm_accumulate(const float* a, const float* b, float* c,
                     std::size_t m, std::size_t k, std::size_t n,
                     GemmPackBuffers* pack = nullptr);

/// C (MxN) = A^T (stored KxM) * B (KxN).
void gemm_at(const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n,
             GemmPackBuffers* pack = nullptr);

/// C (MxN) = A (MxK) * B^T (stored NxK).
void gemm_bt(const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n,
             GemmPackBuffers* pack = nullptr);

/// Tensor-level convenience: returns A*B for rank-2 tensors.
/// Throws std::invalid_argument on rank or inner-dimension mismatch.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace ams
