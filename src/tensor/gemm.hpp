// Blocked single-precision matrix multiplication kernels.
//
// These are the computational workhorse of the convolution (im2col + GEMM)
// and fully-connected layers. The kernels are cache-blocked and written so
// the inner loop vectorizes under -O2; no external BLAS is required.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace ams {

/// C (MxN) = A (MxK) * B (KxN). Row-major raw-pointer kernel.
/// `C` is overwritten. Aliasing between C and A/B is not allowed.
void gemm(const float* a, const float* b, float* c,
          std::size_t m, std::size_t k, std::size_t n);

/// C (MxN) += A (MxK) * B (KxN).
void gemm_accumulate(const float* a, const float* b, float* c,
                     std::size_t m, std::size_t k, std::size_t n);

/// C (MxN) = A^T (stored KxM) * B (KxN).
void gemm_at(const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n);

/// C (MxN) = A (MxK) * B^T (stored NxK).
void gemm_bt(const float* a, const float* b, float* c,
             std::size_t m, std::size_t k, std::size_t n);

/// Tensor-level convenience: returns A*B for rank-2 tensors.
/// Throws std::invalid_argument on rank or inner-dimension mismatch.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace ams
