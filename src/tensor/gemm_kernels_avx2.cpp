// AVX2/FMA GEMM: packed panels + 6x16 register-blocked FMA microkernel.
//
// Compiled with -mavx2 -mfma (per-file flags, see CMakeLists.txt); only
// reached through the cpuid-guarded dispatch in tensor/gemm.cpp.
//
// Determinism: each C element accumulates its K products in k-index
// order inside a private register lane — independent of which microkernel
// variant (full 6x16, narrower row tail, masked column tail) covers it
// and of how rows are split across threads. Outputs are therefore
// bit-identical at any thread count and any row partition; only the
// scalar-vs-AVX2 *arm* choice changes float realizations.
#include "tensor/gemm_kernels.hpp"

#if defined(AMSNET_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "runtime/parallel_for.hpp"

namespace ams::kernels {

namespace {

constexpr std::size_t kMR = 6;   // microkernel rows
constexpr std::size_t kNR = 16;  // microkernel columns (2 YMM)

// Same dispatch threshold as the scalar arm (tensor/gemm.cpp): below
// this many MACs the parallel_for overhead exceeds the multiply.
constexpr std::size_t kParallelMacThreshold = 1u << 15;

alignas(32) constexpr std::int32_t kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                     0,  0,  0,  0,  0,  0,  0,  0};

/// First `r` (0..8) lanes selected.
inline __m256i mask_for(std::size_t r) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMaskTable + 8 - r));
}

/// Packs B (row-major KxN) into 16-wide column panels, zero-padded.
/// Panel p occupies bp[p*k*16, (p+1)*k*16); row kk of a panel holds
/// b[kk, p*16 .. p*16+15].
void pack_b(const float* b, float* bp, std::size_t k, std::size_t n) {
    const std::size_t panels = (n + kNR - 1) / kNR;
    for (std::size_t p = 0; p < panels; ++p) {
        const std::size_t j0 = p * kNR;
        const std::size_t w = std::min(kNR, n - j0);
        float* dst = bp + p * k * kNR;
        if (w == kNR) {
            for (std::size_t kk = 0; kk < k; ++kk) {
                std::memcpy(dst + kk * kNR, b + kk * n + j0, kNR * sizeof(float));
            }
        } else {
            for (std::size_t kk = 0; kk < k; ++kk) {
                float* d = dst + kk * kNR;
                const float* s = b + kk * n + j0;
                std::size_t j = 0;
                for (; j < w; ++j) d[j] = s[j];
                for (; j < kNR; ++j) d[j] = 0.0f;
            }
        }
    }
}

/// Same panel layout, but the source is B^T stored NxK (gemm_bt).
void pack_b_from_bt(const float* bt, float* bp, std::size_t k, std::size_t n) {
    const std::size_t panels = (n + kNR - 1) / kNR;
    for (std::size_t p = 0; p < panels; ++p) {
        const std::size_t j0 = p * kNR;
        const std::size_t w = std::min(kNR, n - j0);
        float* dst = bp + p * k * kNR;
        for (std::size_t kk = 0; kk < k; ++kk) {
            float* d = dst + kk * kNR;
            std::size_t j = 0;
            for (; j < w; ++j) d[j] = bt[(j0 + j) * k + kk];
            for (; j < kNR; ++j) d[j] = 0.0f;
        }
    }
}

/// Packs `mr` rows of A starting at row i0 into a k-major interleaved
/// strip: ap[kk*mr + r] = A[i0+r, kk]. `a_transposed` reads A stored
/// KxM (the gemm_at layout) without materializing the transpose.
void pack_a_panel(const float* a, float* ap, std::size_t i0, std::size_t mr, std::size_t m,
                  std::size_t k, bool a_transposed) {
    if (a_transposed) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float* src = a + kk * m + i0;
            float* d = ap + kk * mr;
            for (std::size_t r = 0; r < mr; ++r) d[r] = src[r];
        }
    } else {
        for (std::size_t kk = 0; kk < k; ++kk) {
            float* d = ap + kk * mr;
            for (std::size_t r = 0; r < mr; ++r) d[r] = a[(i0 + r) * k + kk];
        }
    }
}

/// MR x 16 FMA microkernel: full-K sweep with 2*MR YMM accumulators.
/// Acc adds on top of C; Masked uses masked C access for column tails
/// (the padded B lanes contribute zeros to the discarded accumulator
/// lanes, so loads from the packed panel are always full-width).
template <int MR, bool Acc, bool Masked>
void ukr(const float* ap, const float* bp, std::size_t k, float* c, std::size_t ldc,
         __m256i m0, __m256i m1) {
    __m256 acc0[MR], acc1[MR];
    for (int r = 0; r < MR; ++r) {
        acc0[r] = _mm256_setzero_ps();
        acc1[r] = _mm256_setzero_ps();
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(bp + kk * kNR);
        const __m256 b1 = _mm256_loadu_ps(bp + kk * kNR + 8);
        const float* arow = ap + kk * MR;
        for (int r = 0; r < MR; ++r) {
            const __m256 av = _mm256_broadcast_ss(arow + r);
            acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
            acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
        }
    }
    for (int r = 0; r < MR; ++r) {
        float* crow = c + static_cast<std::size_t>(r) * ldc;
        if constexpr (Masked) {
            if constexpr (Acc) {
                acc0[r] = _mm256_add_ps(acc0[r], _mm256_maskload_ps(crow, m0));
                acc1[r] = _mm256_add_ps(acc1[r], _mm256_maskload_ps(crow + 8, m1));
            }
            _mm256_maskstore_ps(crow, m0, acc0[r]);
            _mm256_maskstore_ps(crow + 8, m1, acc1[r]);
        } else {
            if constexpr (Acc) {
                acc0[r] = _mm256_add_ps(acc0[r], _mm256_loadu_ps(crow));
                acc1[r] = _mm256_add_ps(acc1[r], _mm256_loadu_ps(crow + 8));
            }
            _mm256_storeu_ps(crow, acc0[r]);
            _mm256_storeu_ps(crow + 8, acc1[r]);
        }
    }
}

template <bool Acc, bool Masked>
void run_ukr(std::size_t mr, const float* ap, const float* bp, std::size_t k, float* c,
             std::size_t ldc, __m256i m0, __m256i m1) {
    switch (mr) {
        case 1: ukr<1, Acc, Masked>(ap, bp, k, c, ldc, m0, m1); break;
        case 2: ukr<2, Acc, Masked>(ap, bp, k, c, ldc, m0, m1); break;
        case 3: ukr<3, Acc, Masked>(ap, bp, k, c, ldc, m0, m1); break;
        case 4: ukr<4, Acc, Masked>(ap, bp, k, c, ldc, m0, m1); break;
        case 5: ukr<5, Acc, Masked>(ap, bp, k, c, ldc, m0, m1); break;
        default: ukr<6, Acc, Masked>(ap, bp, k, c, ldc, m0, m1); break;
    }
}

/// Multiplies rows [r0, r1) of C against the pre-packed B panels. Runs
/// on the thread that owns the chunk: the A strip comes from that
/// thread's tls buffers (a shared strip would race across workers).
void gemm_rows_packed(const float* a, const float* bp, float* c, std::size_t r0,
                      std::size_t r1, std::size_t m, std::size_t k, std::size_t n,
                      bool accumulate, bool a_transposed) {
    float* ap = tls_pack_buffers().ensure(GemmPackBuffers::kPackA, kMR * std::max<std::size_t>(k, 1));
    const std::size_t full_panels = n / kNR;
    const std::size_t rem = n % kNR;
    // Unused when rem == 0, but cheap to materialize unconditionally.
    const __m256i m0 = mask_for(std::min<std::size_t>(rem, 8));
    const __m256i m1 = mask_for(rem > 8 ? rem - 8 : 0);

    for (std::size_t i = r0; i < r1; i += kMR) {
        const std::size_t mr = std::min(kMR, r1 - i);
        pack_a_panel(a, ap, i, mr, m, k, a_transposed);
        for (std::size_t p = 0; p < full_panels; ++p) {
            float* cpanel = c + i * n + p * kNR;
            if (accumulate) {
                run_ukr<true, false>(mr, ap, bp + p * k * kNR, k, cpanel, n, m0, m1);
            } else {
                run_ukr<false, false>(mr, ap, bp + p * k * kNR, k, cpanel, n, m0, m1);
            }
        }
        if (rem != 0) {
            float* cpanel = c + i * n + full_panels * kNR;
            if (accumulate) {
                run_ukr<true, true>(mr, ap, bp + full_panels * k * kNR, k, cpanel, n, m0, m1);
            } else {
                run_ukr<false, true>(mr, ap, bp + full_panels * k * kNR, k, cpanel, n, m0, m1);
            }
        }
    }
}

void gemm_packed_driver(const float* a, const float* b, float* c, std::size_t m,
                        std::size_t k, std::size_t n, bool accumulate, bool a_transposed,
                        bool b_transposed, GemmPackBuffers* pack) {
    if (m == 0 || n == 0) return;
    GemmPackBuffers& pb = pack != nullptr ? *pack : tls_pack_buffers();
    float* bp = pb.ensure(GemmPackBuffers::kPackB, packed_b_floats(k, n));
    if (b_transposed) {
        pack_b_from_bt(b, bp, k, n);
    } else {
        pack_b(b, bp, k, n);
    }
    if (m * k * n < kParallelMacThreshold) {
        gemm_rows_packed(a, bp, c, 0, m, m, k, n, accumulate, a_transposed);
        return;
    }
    const std::size_t min_rows =
        std::max<std::size_t>(1, kParallelMacThreshold / std::max<std::size_t>(1, k * n));
    runtime::parallel_for(0, m, runtime::suggest_grain(m, min_rows),
                          [&](std::size_t lo, std::size_t hi) {
                              gemm_rows_packed(a, bp, c, lo, hi, m, k, n, accumulate,
                                               a_transposed);
                          });
}

}  // namespace

void gemm_avx2(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
               std::size_t n, bool accumulate, bool a_transposed, GemmPackBuffers* pack) {
    gemm_packed_driver(a, b, c, m, k, n, accumulate, a_transposed, /*b_transposed=*/false,
                       pack);
}

void gemm_bt_avx2(const float* a, const float* bt, float* c, std::size_t m, std::size_t k,
                  std::size_t n, GemmPackBuffers* pack) {
    gemm_packed_driver(a, bt, c, m, k, n, /*accumulate=*/false, /*a_transposed=*/false,
                       /*b_transposed=*/true, pack);
}

}  // namespace ams::kernels

#endif  // AMSNET_HAVE_AVX2
