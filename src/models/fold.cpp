#include "models/fold.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/gemm.hpp"

namespace ams::models {

FoldedConv fold_conv_bn(ConvUnit& unit, float eps) {
    if (unit.injector().enabled()) {
        throw std::invalid_argument(
            "fold_conv_bn: disable the AMS injector before folding (deployment step)");
    }
    const nn::Conv2d& conv = unit.conv().conv();
    const nn::BatchNorm2d& bn = unit.bn();
    const Tensor& w = conv.weight().value;
    const std::size_t cout = w.dim(0);
    const std::size_t per_filter = w.size() / cout;

    FoldedConv folded{Tensor(w.shape()), Tensor(Shape{cout})};
    for (std::size_t oc = 0; oc < cout; ++oc) {
        const float inv_std =
            1.0f / std::sqrt(bn.running_var()[oc] + eps);
        const float gamma = unit.bn().gamma().value[oc];
        const float beta = unit.bn().beta().value[oc];
        const float mean = bn.running_mean()[oc];
        const float scale = gamma * inv_std;
        for (std::size_t i = 0; i < per_filter; ++i) {
            folded.weight[oc * per_filter + i] = w[oc * per_filter + i] * scale;
        }
        folded.bias[oc] = beta - scale * mean;
    }
    return folded;
}

Tensor apply_folded(const FoldedConv& folded, const Tensor& input, std::size_t stride,
                    std::size_t padding) {
    if (input.rank() != 4 || folded.weight.rank() != 4) {
        throw std::invalid_argument("apply_folded: expected NCHW input and 4-d weights");
    }
    const std::size_t cout = folded.weight.dim(0);
    const std::size_t kernel = folded.weight.dim(2);
    ConvGeometry g{folded.weight.dim(1), input.dim(2), input.dim(3), kernel, kernel,
                   stride,               stride,       padding,      padding};
    g.validate();
    const std::size_t batch = input.dim(0);
    const std::size_t out_spatial = g.out_h() * g.out_w();
    const std::size_t patch = g.patch_size();
    const std::size_t in_image = g.in_channels * g.in_h * g.in_w;

    Tensor output(Shape{batch, cout, g.out_h(), g.out_w()});
    std::vector<float> columns(patch * out_spatial);
    for (std::size_t b = 0; b < batch; ++b) {
        im2col(input.data() + b * in_image, g, columns.data());
        gemm(folded.weight.data(), columns.data(),
             output.data() + b * cout * out_spatial, cout, patch, out_spatial);
        for (std::size_t oc = 0; oc < cout; ++oc) {
            float* chan = output.data() + (b * cout + oc) * out_spatial;
            for (std::size_t i = 0; i < out_spatial; ++i) chan[i] += folded.bias[oc];
        }
    }
    return output;
}

}  // namespace ams::models
