#include "models/fold.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/conv_eval.hpp"
#include "runtime/eval_context.hpp"

namespace ams::models {

FoldedConv fold_bn_into_conv(const Tensor& weight, nn::BatchNorm2d& bn, float eps) {
    const std::size_t cout = weight.dim(0);
    const std::size_t per_filter = weight.size() / cout;

    FoldedConv folded{Tensor(weight.shape()), Tensor(Shape{cout})};
    for (std::size_t oc = 0; oc < cout; ++oc) {
        const float inv_std = 1.0f / std::sqrt(bn.running_var()[oc] + eps);
        const float gamma = bn.gamma().value[oc];
        const float beta = bn.beta().value[oc];
        const float mean = bn.running_mean()[oc];
        const float scale = gamma * inv_std;
        for (std::size_t i = 0; i < per_filter; ++i) {
            folded.weight[oc * per_filter + i] = weight[oc * per_filter + i] * scale;
        }
        folded.bias[oc] = beta - scale * mean;
    }
    return folded;
}

FoldedConv fold_conv_bn(ConvUnit& unit, float eps) {
    if (unit.injector().enabled()) {
        throw std::invalid_argument(
            "fold_conv_bn: disable the AMS injector before folding (deployment step)");
    }
    return fold_bn_into_conv(unit.conv().conv().weight().value, unit.bn(), eps);
}

Tensor apply_folded(const FoldedConv& folded, const Tensor& input, std::size_t stride,
                    std::size_t padding) {
    if (input.rank() != 4 || folded.weight.rank() != 4) {
        throw std::invalid_argument("apply_folded: expected NCHW input and 4-d weights");
    }
    const std::size_t cout = folded.weight.dim(0);
    const std::size_t kernel = folded.weight.dim(2);
    ConvGeometry g{folded.weight.dim(1), input.dim(2), input.dim(3), kernel, kernel,
                   stride,               stride,       padding,      padding};
    g.validate();
    const ConvLowering low(g);
    const std::size_t batch = input.dim(0);
    Tensor output(Shape{batch, cout, low.out_h(), low.out_w()});

    // The digital bias add, as a per-image GEMM epilogue (same element
    // order as the legacy serial loop).
    struct BiasTail {
        const float* bias;
        std::size_t cout;
        std::size_t out_spatial;
        static void apply(void* self, float* out_image, std::size_t /*b*/) {
            const auto* tail = static_cast<const BiasTail*>(self);
            for (std::size_t oc = 0; oc < tail->cout; ++oc) {
                float* chan = out_image + oc * tail->out_spatial;
                const float bv = tail->bias[oc];
                for (std::size_t i = 0; i < tail->out_spatial; ++i) chan[i] += bv;
            }
        }
    } tail{folded.bias.data(), cout, low.out_spatial()};

    // Shared ConvLowering + EvalContext conv path (same executor as
    // Conv2d::forward(ctx) and the compiled plan); the local context keeps
    // the verification helper self-contained.
    runtime::EvalContext ctx;
    nn::conv_eval_run(input.data(), batch, low, folded.weight.data(), cout, output.data(), ctx,
                      &folded, &BiasTail::apply, &tail);
    return output;
}

}  // namespace ams::models
