// ResNet: the full network builder — stem, residual stages, global average
// pool, and quantized FC head with AMS error injection, in the FP32,
// quantized-only, and quantized+AMS variants the paper studies.
#pragma once

#include <memory>
#include <optional>

#include "models/blocks.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace ams::models {

/// One residual stage: `blocks` blocks at `channels` output channels; the
/// first block applies `stride` (and a projection shortcut if needed).
struct StageSpec {
    std::size_t blocks = 1;
    std::size_t channels = 64;
    std::size_t stride = 1;
};

/// Full network description.
struct ResNetConfig {
    std::size_t num_classes = 10;
    std::size_t in_channels = 3;
    std::size_t stem_channels = 16;
    std::size_t stem_kernel = 3;
    std::size_t stem_stride = 1;
    bool stem_maxpool = false;  ///< 3x3/2 max pool after the stem (ResNet-50)
    std::vector<StageSpec> stages;
    bool bottleneck = true;

    LayerCommon common;  ///< quantization bitwidths, VMAC config, AMS switch

    /// Max |input| over the dataset; the first layer rescales by this
    /// before quantizing (paper Sec. 2). Ignored in the FP32 build.
    float input_max_abs = 1.0f;

    /// Paper Sec. 2: injecting AMS error into the last (FC) layer during
    /// training destroys learning, so it is left out while training and
    /// enabled at evaluation. Set true to reproduce that failure mode.
    bool inject_last_layer_in_training = false;

    std::uint64_t seed = 42;

    /// Throws std::invalid_argument on an empty stage list etc.
    void validate() const;
};

/// Parameter groups for the Table 2 selective-freezing study.
enum class LayerGroup { kConv, kBatchNorm, kFullyConnected };

/// The network.
class ResNet : public nn::Module {
public:
    explicit ResNet(const ResNetConfig& config);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<nn::Parameter*> parameters() override;
    void set_training(bool training) override;
    [[nodiscard]] std::string name() const override { return "ResNet"; }

    void collect_state(const std::string& prefix, TensorMap& out) const override;
    void load_state(const std::string& prefix, const TensorMap& in) override;

    [[nodiscard]] const ResNetConfig& config() const { return config_; }

    /// Every conv unit, stem first, in forward order. (The FC head is not
    /// a conv unit; see fc_injector().)
    [[nodiscard]] std::vector<ConvUnit*> conv_units();

    /// Conv-layer count including downsampling projections (ResNet-50: 53).
    [[nodiscard]] std::size_t num_conv_layers();

    /// All error injectors: one per conv unit plus the FC injector.
    [[nodiscard]] std::vector<vmac::ErrorInjector*> injectors();
    [[nodiscard]] vmac::ErrorInjector& fc_injector() { return *fc_injector_; }

    /// Structure accessors for the graph compiler, in forward order:
    /// quant_input (null in FP32 builds), stem, stem_pool (null unless
    /// configured), blocks, final_activation, gap, fc_activation (null in
    /// FP32 builds), fc, then fc_injector().
    [[nodiscard]] quant::QuantInput* quant_input() { return quant_input_.get(); }
    [[nodiscard]] ConvUnit& stem() { return *stem_; }
    [[nodiscard]] nn::MaxPool2d* stem_pool() { return maxpool_.get(); }
    [[nodiscard]] std::vector<std::unique_ptr<ResidualBlock>>& blocks() { return blocks_; }
    [[nodiscard]] nn::Module& final_activation() { return *final_act_; }
    [[nodiscard]] nn::GlobalAvgPool& gap() { return gap_; }
    [[nodiscard]] quant::QuantAct* fc_activation() { return fc_act_.get(); }
    [[nodiscard]] quant::QuantLinear& fc() { return *fc_; }

    /// Master AMS switch (both conv and FC injectors).
    void set_ams_enabled(bool enabled);

    /// Retunes every injector to a new VMAC cell (ENOB sweeps).
    void set_vmac(const vmac::VmacConfig& vmac_cfg);

    /// Freezes / unfreezes one parameter group (Table 2).
    void set_group_frozen(LayerGroup group, bool frozen);
    [[nodiscard]] std::vector<nn::Parameter*> group_parameters(LayerGroup group);

    /// Fig. 6 instrumentation: per-conv-layer activation statistics at the
    /// injection point.
    void set_recording(bool on);
    void reset_stats();
    [[nodiscard]] std::vector<double> activation_means();

private:
    ResNetConfig config_;
    std::unique_ptr<quant::QuantInput> quant_input_;  ///< null in FP32 builds
    std::unique_ptr<ConvUnit> stem_;
    std::unique_ptr<nn::MaxPool2d> maxpool_;          ///< null unless configured
    std::vector<std::unique_ptr<ResidualBlock>> blocks_;
    std::unique_ptr<nn::Module> final_act_;
    nn::GlobalAvgPool gap_;
    std::unique_ptr<quant::QuantAct> fc_act_;         ///< null in FP32 builds
    std::unique_ptr<quant::QuantLinear> fc_;
    std::unique_ptr<vmac::ErrorInjector> fc_injector_;

    void apply_last_layer_policy();
};

/// Builds an evaluation-only replica of `primary` for a serving instance
/// pool (serve/server.hpp):
///
///   * same architecture and trained state — persistent buffers (BN
///     running statistics) are deep-copied, but every weight tensor is a
///     *borrowed view* over `primary`'s storage (nn::share_parameters_with),
///     so an added instance costs only its buffers, injector state, and
///     arenas, not another copy of the network;
///   * gradient accumulators are released (the replica never trains);
///   * the replica's noise streams are reseeded from (config seed,
///     instance), so stochastic AMS error realizations are statistically
///     independent across instances — two replicas with the same
///     `instance` id reproduce the same realization, and deterministic
///     (noise-free / bit_exact) configurations stay bit-identical to
///     `primary` at any instance id.
///
/// `primary` must outlive the replica, and its weights must not be
/// mutated (trained, re-loaded) while replicas exist.
[[nodiscard]] std::unique_ptr<ResNet> make_eval_replica(ResNet& primary, std::uint64_t instance);

/// CPU-trainable preset structurally faithful to ResNet-50 (bottleneck
/// blocks, BN everywhere, projection downsampling): 22 conv layers on
/// 16x16 inputs. `common` selects FP32 / quantized / AMS variants.
[[nodiscard]] ResNetConfig mini_resnet_config(const LayerCommon& common,
                                              std::size_t num_classes = 10,
                                              float input_max_abs = 1.0f,
                                              std::uint64_t seed = 42);

/// Very small basic-block network for unit tests (runs in milliseconds).
[[nodiscard]] ResNetConfig tiny_resnet_config(const LayerCommon& common,
                                              std::size_t num_classes = 4,
                                              std::uint64_t seed = 7);

/// The full ResNet-50 structure (224x224 stem, 3/4/6/3 bottleneck stages,
/// 53 conv layers). Used for structural verification; far too slow to
/// train here.
[[nodiscard]] ResNetConfig resnet50_config(const LayerCommon& common,
                                           std::size_t num_classes = 1000);

}  // namespace ams::models
