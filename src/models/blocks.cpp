#include "models/blocks.hpp"

#include "nn/activations.hpp"

namespace ams::models {

std::unique_ptr<nn::Module> make_activation(const LayerCommon& common) {
    if (common.bits_x >= quant::kFloatBits) {
        return std::make_unique<nn::ReLU>();
    }
    return std::make_unique<quant::QuantAct>(common.bits_x);
}

namespace {

nn::Conv2dOptions conv_opts(std::size_t in, std::size_t out, std::size_t kernel,
                            std::size_t stride) {
    nn::Conv2dOptions o;
    o.in_channels = in;
    o.out_channels = out;
    o.kernel = kernel;
    o.stride = stride;
    o.padding = kernel / 2;
    o.bias = false;
    return o;
}

std::unique_ptr<ConvUnit> make_unit(std::size_t in, std::size_t out, std::size_t kernel,
                                    std::size_t stride, const LayerCommon& common, Rng& rng,
                                    std::uint64_t stream) {
    return std::make_unique<ConvUnit>(conv_opts(in, out, kernel, stride), common.bits_w,
                                      common.vmac, common.ams_enabled, rng, common.mode, stream,
                                      common.device);
}

}  // namespace

BottleneckBlock::BottleneckBlock(std::size_t in_channels, std::size_t out_channels,
                                 std::size_t stride, const LayerCommon& common, Rng& rng,
                                 std::uint64_t noise_stream) {
    const std::size_t mid = std::max<std::size_t>(out_channels / 4, 1);
    act_in_ = make_activation(common);
    unit1_ = make_unit(in_channels, mid, 1, 1, common, rng, noise_stream * 16 + 1);
    act1_ = make_activation(common);
    unit2_ = make_unit(mid, mid, 3, stride, common, rng, noise_stream * 16 + 2);
    act2_ = make_activation(common);
    unit3_ = make_unit(mid, out_channels, 1, 1, common, rng, noise_stream * 16 + 3);
    if (stride != 1 || in_channels != out_channels) {
        projection_ =
            make_unit(in_channels, out_channels, 1, stride, common, rng, noise_stream * 16 + 4);
    }
}

Tensor BottleneckBlock::forward(const Tensor& input) {
    Tensor a = act_in_->forward(input);
    Tensor m = unit1_->forward(a);
    m = act1_->forward(m);
    m = unit2_->forward(m);
    m = act2_->forward(m);
    m = unit3_->forward(m);
    if (projection_) {
        m += projection_->forward(a);
        return m;
    }
    m += input;
    return m;
}

Shape BottleneckBlock::plan(const Shape& in, runtime::EvalContext& ctx) {
    const Shape a = act_in_->plan(in, ctx);
    Shape s = unit1_->plan(a, ctx);
    s = act1_->plan(s, ctx);
    s = unit2_->plan(s, ctx);
    s = act2_->plan(s, ctx);
    s = unit3_->plan(s, ctx);
    if (projection_) (void)projection_->plan(a, ctx);
    return s;
}

Tensor BottleneckBlock::forward(const Tensor& input, runtime::EvalContext& ctx) {
    // Same call order as the allocating forward (the injectors' noise
    // epochs advance per call); `a` stays valid across the main path
    // because arena allocations never move earlier ones.
    Tensor a = act_in_->forward(input, ctx);
    Tensor m = unit1_->forward(a, ctx);
    m = act1_->forward(m, ctx);
    m = unit2_->forward(m, ctx);
    m = act2_->forward(m, ctx);
    m = unit3_->forward(m, ctx);
    if (projection_) {
        m += projection_->forward(a, ctx);
        return m;
    }
    m += input;
    return m;
}

Tensor BottleneckBlock::backward(const Tensor& grad_output) {
    Tensor g = unit3_->backward(grad_output);
    g = act2_->backward(g);
    g = unit2_->backward(g);
    g = act1_->backward(g);
    Tensor grad_a = unit1_->backward(g);
    if (projection_) {
        grad_a += projection_->backward(grad_output);
        return act_in_->backward(grad_a);
    }
    Tensor grad_x = act_in_->backward(grad_a);
    grad_x += grad_output;  // identity shortcut
    return grad_x;
}

std::vector<nn::Parameter*> BottleneckBlock::parameters() {
    std::vector<nn::Parameter*> out;
    for (ConvUnit* u : conv_units()) {
        auto p = u->parameters();
        out.insert(out.end(), p.begin(), p.end());
    }
    return out;
}

void BottleneckBlock::set_training(bool training) {
    nn::Module::set_training(training);
    act_in_->set_training(training);
    act1_->set_training(training);
    act2_->set_training(training);
    for (ConvUnit* u : conv_units()) u->set_training(training);
}

std::vector<ConvUnit*> BottleneckBlock::conv_units() {
    std::vector<ConvUnit*> units{unit1_.get(), unit2_.get(), unit3_.get()};
    if (projection_) units.push_back(projection_.get());
    return units;
}

void BottleneckBlock::collect_state(const std::string& prefix, TensorMap& out) const {
    unit1_->collect_state(prefix + "u1.", out);
    unit2_->collect_state(prefix + "u2.", out);
    unit3_->collect_state(prefix + "u3.", out);
    if (projection_) projection_->collect_state(prefix + "proj.", out);
}

void BottleneckBlock::load_state(const std::string& prefix, const TensorMap& in) {
    unit1_->load_state(prefix + "u1.", in);
    unit2_->load_state(prefix + "u2.", in);
    unit3_->load_state(prefix + "u3.", in);
    if (projection_) projection_->load_state(prefix + "proj.", in);
}

BasicBlock::BasicBlock(std::size_t in_channels, std::size_t out_channels, std::size_t stride,
                       const LayerCommon& common, Rng& rng, std::uint64_t noise_stream) {
    act_in_ = make_activation(common);
    unit1_ = make_unit(in_channels, out_channels, 3, stride, common, rng, noise_stream * 16 + 1);
    act1_ = make_activation(common);
    unit2_ = make_unit(out_channels, out_channels, 3, 1, common, rng, noise_stream * 16 + 2);
    if (stride != 1 || in_channels != out_channels) {
        projection_ =
            make_unit(in_channels, out_channels, 1, stride, common, rng, noise_stream * 16 + 3);
    }
}

Tensor BasicBlock::forward(const Tensor& input) {
    Tensor a = act_in_->forward(input);
    Tensor m = unit1_->forward(a);
    m = act1_->forward(m);
    m = unit2_->forward(m);
    if (projection_) {
        m += projection_->forward(a);
        return m;
    }
    m += input;
    return m;
}

Shape BasicBlock::plan(const Shape& in, runtime::EvalContext& ctx) {
    const Shape a = act_in_->plan(in, ctx);
    Shape s = unit1_->plan(a, ctx);
    s = act1_->plan(s, ctx);
    s = unit2_->plan(s, ctx);
    if (projection_) (void)projection_->plan(a, ctx);
    return s;
}

Tensor BasicBlock::forward(const Tensor& input, runtime::EvalContext& ctx) {
    Tensor a = act_in_->forward(input, ctx);
    Tensor m = unit1_->forward(a, ctx);
    m = act1_->forward(m, ctx);
    m = unit2_->forward(m, ctx);
    if (projection_) {
        m += projection_->forward(a, ctx);
        return m;
    }
    m += input;
    return m;
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
    Tensor g = unit2_->backward(grad_output);
    g = act1_->backward(g);
    Tensor grad_a = unit1_->backward(g);
    if (projection_) {
        grad_a += projection_->backward(grad_output);
        return act_in_->backward(grad_a);
    }
    Tensor grad_x = act_in_->backward(grad_a);
    grad_x += grad_output;
    return grad_x;
}

std::vector<nn::Parameter*> BasicBlock::parameters() {
    std::vector<nn::Parameter*> out;
    for (ConvUnit* u : conv_units()) {
        auto p = u->parameters();
        out.insert(out.end(), p.begin(), p.end());
    }
    return out;
}

void BasicBlock::set_training(bool training) {
    nn::Module::set_training(training);
    act_in_->set_training(training);
    act1_->set_training(training);
    for (ConvUnit* u : conv_units()) u->set_training(training);
}

std::vector<ConvUnit*> BasicBlock::conv_units() {
    std::vector<ConvUnit*> units{unit1_.get(), unit2_.get()};
    if (projection_) units.push_back(projection_.get());
    return units;
}

void BasicBlock::collect_state(const std::string& prefix, TensorMap& out) const {
    unit1_->collect_state(prefix + "u1.", out);
    unit2_->collect_state(prefix + "u2.", out);
    if (projection_) projection_->collect_state(prefix + "proj.", out);
}

void BasicBlock::load_state(const std::string& prefix, const TensorMap& in) {
    unit1_->load_state(prefix + "u1.", in);
    unit2_->load_state(prefix + "u2.", in);
    if (projection_) projection_->load_state(prefix + "proj.", in);
}

}  // namespace ams::models
