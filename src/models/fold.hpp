// Batch-norm folding (paper Sec. 2): "Batch normalization weights and
// biases are also not quantized; this is acceptable because, after
// retraining, weights can be folded into the convolutional layer, while
// biases can be added digitally at little extra energy cost."
//
// This module performs that fold: given a ConvUnit in evaluation mode
// (running statistics), it produces the equivalent single convolution
//   y = conv(x; W') + b'
//   W'[oc,...] = W[oc,...] * gamma[oc] / sqrt(var[oc] + eps)
//   b'[oc]     = beta[oc] - gamma[oc] * mean[oc] / sqrt(var[oc] + eps)
// so the deployed AMS hardware runs one conv plus a digital bias add.
#pragma once

#include "models/conv_unit.hpp"

namespace ams::models {

/// The folded layer: convolution weights plus a per-channel digital bias.
struct FoldedConv {
    Tensor weight;  ///< same shape as the source conv weight
    Tensor bias;    ///< {out_channels}
};

/// The shared fold arithmetic: scales each output-channel filter of
/// `weight` by gamma[oc] / sqrt(var[oc] + eps) and derives the digital
/// bias from the running statistics. Both fold_conv_bn and the graph
/// compiler's fold pass (src/compile, CompileOptions::fold_bn) call this,
/// so the two paths can never drift.
[[nodiscard]] FoldedConv fold_bn_into_conv(const Tensor& weight, nn::BatchNorm2d& bn, float eps);

/// Folds `unit`'s batch norm (running statistics) into its convolution
/// weights. The unit must hold FP32 (latent) weights; for a quantized
/// deployment the folded weights are re-quantized afterwards, as the
/// paper assumes ("after retraining"). Throws std::invalid_argument if
/// the unit's injector is enabled (folding is a deployment step — noise
/// belongs to the hardware, not the fold).
[[nodiscard]] FoldedConv fold_conv_bn(ConvUnit& unit, float eps = 1e-5f);

/// Applies the folded layer to an input (NCHW), for verification and for
/// deployment-time evaluation: conv with W' then add b' per channel.
[[nodiscard]] Tensor apply_folded(const FoldedConv& folded, const Tensor& input,
                                  std::size_t stride, std::size_t padding);

}  // namespace ams::models
