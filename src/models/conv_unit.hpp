// ConvUnit: one quantized convolutional layer with AMS error injection,
// exactly the Fig. 3 pipeline segment  conv -> AMS error -> batch norm.
#pragma once

#include <memory>
#include <optional>

#include "ams/error_injector.hpp"
#include "nn/batchnorm.hpp"
#include "quant/quant_modules.hpp"

namespace ams::models {

/// Accumulates the mean of a layer's post-injection activations across
/// forward passes — the quantity Fig. 6 plots per conv layer over the
/// whole validation set.
class ActivationStats {
public:
    void reset() {
        sum_ = 0.0;
        count_ = 0;
    }
    void accumulate(const Tensor& t) {
        for (std::size_t i = 0; i < t.size(); ++i) sum_ += t[i];
        count_ += t.size();
    }
    [[nodiscard]] double mean() const {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }
    [[nodiscard]] std::size_t count() const { return count_; }

private:
    double sum_ = 0.0;
    std::size_t count_ = 0;
};

/// Quantized conv -> AMS error injection -> batch norm.
///
/// The injector's N_tot is derived from the convolution geometry
/// (C_in * K * K). The unit records post-injection activation statistics
/// when recording is enabled (Fig. 6).
class ConvUnit : public nn::Module {
public:
    /// `vmac` provides ENOB/Nmult; `ams_enabled` can be toggled later.
    /// `device` adds chip-level statics to the injector (inactive default).
    ConvUnit(const nn::Conv2dOptions& opts, std::size_t bits_w, const vmac::VmacConfig& vmac,
             bool ams_enabled, Rng& rng, vmac::InjectionMode mode,
             std::uint64_t noise_stream, const vmac::DeviceProfile& device = {});

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<nn::Parameter*> parameters() override;
    void set_training(bool training) override;
    [[nodiscard]] std::string name() const override { return "ConvUnit"; }

    void collect_state(const std::string& prefix, TensorMap& out) const override;
    void load_state(const std::string& prefix, const TensorMap& in) override;

    [[nodiscard]] quant::QuantConv2d& conv() { return conv_; }
    [[nodiscard]] vmac::ErrorInjector& injector() { return injector_; }
    [[nodiscard]] nn::BatchNorm2d& bn() { return bn_; }

    /// Parameter group accessors for the Table 2 freezing study.
    [[nodiscard]] std::vector<nn::Parameter*> conv_parameters() { return conv_.parameters(); }
    [[nodiscard]] std::vector<nn::Parameter*> bn_parameters() { return bn_.parameters(); }

    void set_recording(bool on) { recording_ = on; }
    [[nodiscard]] bool recording() const { return recording_; }
    [[nodiscard]] ActivationStats& stats() { return stats_; }

private:
    quant::QuantConv2d conv_;
    vmac::ErrorInjector injector_;
    nn::BatchNorm2d bn_;
    bool recording_ = false;
    ActivationStats stats_;
};

}  // namespace ams::models
