#include "models/resnet.hpp"

#include <stdexcept>

namespace ams::models {

void ResNetConfig::validate() const {
    if (stages.empty()) throw std::invalid_argument("ResNetConfig: need at least one stage");
    if (num_classes < 2) throw std::invalid_argument("ResNetConfig: need >= 2 classes");
    if (in_channels == 0 || stem_channels == 0) {
        throw std::invalid_argument("ResNetConfig: zero channel count");
    }
    for (const StageSpec& s : stages) {
        if (s.blocks == 0 || s.channels == 0 || s.stride == 0) {
            throw std::invalid_argument("ResNetConfig: degenerate stage spec");
        }
    }
    common.vmac.validate();
    if (input_max_abs <= 0.0f) {
        throw std::invalid_argument("ResNetConfig: input_max_abs must be positive");
    }
}

ResNet::ResNet(const ResNetConfig& config) : config_(config) {
    config.validate();
    Rng rng(config.seed);
    const bool quantized = config.common.bits_x < quant::kFloatBits ||
                           config.common.bits_w < quant::kFloatBits;

    if (quantized) {
        quant_input_ =
            std::make_unique<quant::QuantInput>(config.input_max_abs, config.common.bits_x);
    }

    nn::Conv2dOptions stem_opts;
    stem_opts.in_channels = config.in_channels;
    stem_opts.out_channels = config.stem_channels;
    stem_opts.kernel = config.stem_kernel;
    stem_opts.stride = config.stem_stride;
    stem_opts.padding = config.stem_kernel / 2;
    stem_ = std::make_unique<ConvUnit>(stem_opts, config.common.bits_w, config.common.vmac,
                                       config.common.ams_enabled, rng, config.common.mode,
                                       /*noise_stream=*/1, config.common.device);
    if (config.stem_maxpool) {
        maxpool_ = std::make_unique<nn::MaxPool2d>(3, 2, 1);
    }

    std::size_t in_ch = config.stem_channels;
    std::uint64_t stream = 2;
    for (const StageSpec& stage : config.stages) {
        for (std::size_t b = 0; b < stage.blocks; ++b) {
            const std::size_t stride = (b == 0) ? stage.stride : 1;
            if (config.bottleneck) {
                blocks_.push_back(std::make_unique<BottleneckBlock>(
                    in_ch, stage.channels, stride, config.common, rng, stream++));
            } else {
                blocks_.push_back(std::make_unique<BasicBlock>(
                    in_ch, stage.channels, stride, config.common, rng, stream++));
            }
            in_ch = stage.channels;
        }
    }

    final_act_ = make_activation(config.common);
    if (quantized) {
        fc_act_ = std::make_unique<quant::QuantAct>(config.common.bits_x);
    }
    fc_ = std::make_unique<quant::QuantLinear>(in_ch, config.num_classes, config.common.bits_w,
                                               rng, /*bias=*/true);
    fc_injector_ = std::make_unique<vmac::ErrorInjector>(
        config.common.vmac, fc_->n_tot(), rng.split(0xFC), config.common.mode,
        config.common.device);
    fc_injector_->set_enabled(config.common.ams_enabled);
    apply_last_layer_policy();
}

void ResNet::apply_last_layer_policy() {
    if (!config_.common.ams_enabled) {
        fc_injector_->set_enabled(false);
        return;
    }
    // Paper Sec. 2: AMS error is injected into every layer at evaluation,
    // but the last layer is left out during training.
    const bool enable =
        !training() || config_.inject_last_layer_in_training;
    fc_injector_->set_enabled(enable);
}

Tensor ResNet::forward(const Tensor& input) {
    Tensor x = input;
    if (quant_input_) x = quant_input_->forward(x);
    x = stem_->forward(x);
    if (maxpool_) x = maxpool_->forward(x);
    for (auto& block : blocks_) x = block->forward(x);
    x = final_act_->forward(x);
    x = gap_.forward(x);
    if (fc_act_) x = fc_act_->forward(x);
    x = fc_->forward(x);
    return fc_injector_->forward(x);
}

Shape ResNet::plan(const Shape& in, runtime::EvalContext& ctx) {
    Shape s = in;
    if (quant_input_) s = quant_input_->plan(s, ctx);
    s = stem_->plan(s, ctx);
    if (maxpool_) s = maxpool_->plan(s, ctx);
    for (auto& block : blocks_) s = block->plan(s, ctx);
    s = final_act_->plan(s, ctx);
    s = gap_.plan(s, ctx);
    if (fc_act_) s = fc_act_->plan(s, ctx);
    s = fc_->plan(s, ctx);
    return fc_injector_->plan(s, ctx);
}

Tensor ResNet::forward(const Tensor& input, runtime::EvalContext& ctx) {
    if (training()) return forward(input);
    Tensor x;
    if (quant_input_) {
        x = quant_input_->forward(input, ctx);
        x = stem_->forward(x, ctx);
    } else {
        x = stem_->forward(input, ctx);
    }
    if (maxpool_) x = maxpool_->forward(x, ctx);
    for (auto& block : blocks_) x = block->forward(x, ctx);
    x = final_act_->forward(x, ctx);
    x = gap_.forward(x, ctx);
    if (fc_act_) x = fc_act_->forward(x, ctx);
    x = fc_->forward(x, ctx);
    return fc_injector_->forward(x, ctx);
}

Tensor ResNet::backward(const Tensor& grad_output) {
    Tensor g = fc_injector_->backward(grad_output);
    g = fc_->backward(g);
    if (fc_act_) g = fc_act_->backward(g);
    g = gap_.backward(g);
    g = final_act_->backward(g);
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) g = (*it)->backward(g);
    if (maxpool_) g = maxpool_->backward(g);
    g = stem_->backward(g);
    if (quant_input_) g = quant_input_->backward(g);
    return g;
}

std::vector<nn::Parameter*> ResNet::parameters() {
    std::vector<nn::Parameter*> out;
    auto append = [&out](std::vector<nn::Parameter*> p) {
        out.insert(out.end(), p.begin(), p.end());
    };
    append(stem_->parameters());
    for (auto& b : blocks_) append(b->parameters());
    append(fc_->parameters());
    return out;
}

void ResNet::set_training(bool training) {
    nn::Module::set_training(training);
    if (quant_input_) quant_input_->set_training(training);
    stem_->set_training(training);
    if (maxpool_) maxpool_->set_training(training);
    for (auto& b : blocks_) b->set_training(training);
    final_act_->set_training(training);
    gap_.set_training(training);
    if (fc_act_) fc_act_->set_training(training);
    fc_->set_training(training);
    fc_injector_->set_training(training);
    apply_last_layer_policy();
}

void ResNet::collect_state(const std::string& prefix, TensorMap& out) const {
    stem_->collect_state(prefix + "stem.", out);
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        blocks_[i]->collect_state(prefix + "block" + std::to_string(i) + ".", out);
    }
    fc_->collect_state(prefix + "fc.", out);
}

void ResNet::load_state(const std::string& prefix, const TensorMap& in) {
    stem_->load_state(prefix + "stem.", in);
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        blocks_[i]->load_state(prefix + "block" + std::to_string(i) + ".", in);
    }
    fc_->load_state(prefix + "fc.", in);
}

std::vector<ConvUnit*> ResNet::conv_units() {
    std::vector<ConvUnit*> units{stem_.get()};
    for (auto& b : blocks_) {
        auto u = b->conv_units();
        units.insert(units.end(), u.begin(), u.end());
    }
    return units;
}

std::size_t ResNet::num_conv_layers() {
    return conv_units().size();
}

std::vector<vmac::ErrorInjector*> ResNet::injectors() {
    std::vector<vmac::ErrorInjector*> out;
    for (ConvUnit* u : conv_units()) out.push_back(&u->injector());
    out.push_back(fc_injector_.get());
    return out;
}

void ResNet::set_ams_enabled(bool enabled) {
    config_.common.ams_enabled = enabled;
    for (ConvUnit* u : conv_units()) u->injector().set_enabled(enabled);
    fc_injector_->set_enabled(enabled);
    apply_last_layer_policy();
}

void ResNet::set_vmac(const vmac::VmacConfig& vmac_cfg) {
    config_.common.vmac = vmac_cfg;
    for (vmac::ErrorInjector* inj : injectors()) inj->set_config(vmac_cfg);
}

std::vector<nn::Parameter*> ResNet::group_parameters(LayerGroup group) {
    std::vector<nn::Parameter*> out;
    auto append = [&out](std::vector<nn::Parameter*> p) {
        out.insert(out.end(), p.begin(), p.end());
    };
    switch (group) {
        case LayerGroup::kConv:
            for (ConvUnit* u : conv_units()) append(u->conv_parameters());
            break;
        case LayerGroup::kBatchNorm:
            for (ConvUnit* u : conv_units()) append(u->bn_parameters());
            break;
        case LayerGroup::kFullyConnected:
            append(fc_->parameters());
            break;
    }
    return out;
}

void ResNet::set_group_frozen(LayerGroup group, bool frozen) {
    for (nn::Parameter* p : group_parameters(group)) p->frozen = frozen;
}

void ResNet::set_recording(bool on) {
    for (ConvUnit* u : conv_units()) u->set_recording(on);
}

void ResNet::reset_stats() {
    for (ConvUnit* u : conv_units()) u->stats().reset();
}

std::vector<double> ResNet::activation_means() {
    std::vector<double> means;
    for (ConvUnit* u : conv_units()) means.push_back(u->stats().mean());
    return means;
}

std::unique_ptr<ResNet> make_eval_replica(ResNet& primary, std::uint64_t instance) {
    ResNetConfig cfg = primary.config();
    // splitmix64-style seed mix: instance 0 keeps a distinct stream from
    // the primary too, so a pool never accidentally replays the noise
    // sequence the primary produced before the pool was built.
    std::uint64_t z = cfg.seed ^ (0x9E3779B97F4A7C15ULL * (instance + 1));
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    cfg.seed = z ^ (z >> 31);

    auto replica = std::make_unique<ResNet>(cfg);
    // Deep-copy the trained state first (persistent buffers like BN
    // running statistics travel through the state map), then rebind the
    // large weight tensors to borrowed views — the deep copies made by
    // load_state are freed by the rebind, so only buffers stay owned.
    TensorMap state;
    primary.collect_state("", state);
    replica->load_state("", state);
    (void)nn::share_parameters_with(*replica, primary);
    (void)nn::release_gradients(*replica);
    replica->set_training(false);
    return replica;
}

ResNetConfig mini_resnet_config(const LayerCommon& common, std::size_t num_classes,
                                float input_max_abs, std::uint64_t seed) {
    ResNetConfig cfg;
    cfg.num_classes = num_classes;
    cfg.in_channels = 3;
    cfg.stem_channels = 8;
    cfg.stem_kernel = 3;
    cfg.stem_stride = 1;
    cfg.stem_maxpool = false;
    cfg.stages = {{1, 32, 1}, {2, 64, 2}, {2, 128, 2}};
    cfg.bottleneck = true;
    cfg.common = common;
    cfg.input_max_abs = input_max_abs;
    cfg.seed = seed;
    return cfg;
}

ResNetConfig tiny_resnet_config(const LayerCommon& common, std::size_t num_classes,
                                std::uint64_t seed) {
    ResNetConfig cfg;
    cfg.num_classes = num_classes;
    cfg.in_channels = 3;
    cfg.stem_channels = 4;
    cfg.stages = {{1, 8, 1}, {1, 16, 2}};
    cfg.bottleneck = false;
    cfg.common = common;
    cfg.seed = seed;
    return cfg;
}

ResNetConfig resnet50_config(const LayerCommon& common, std::size_t num_classes) {
    ResNetConfig cfg;
    cfg.num_classes = num_classes;
    cfg.in_channels = 3;
    cfg.stem_channels = 64;
    cfg.stem_kernel = 7;
    cfg.stem_stride = 2;
    cfg.stem_maxpool = true;
    cfg.stages = {{3, 256, 1}, {4, 512, 2}, {6, 1024, 2}, {3, 2048, 2}};
    cfg.bottleneck = true;
    cfg.common = common;
    return cfg;
}

}  // namespace ams::models
