#include "models/conv_unit.hpp"

namespace ams::models {

ConvUnit::ConvUnit(const nn::Conv2dOptions& opts, std::size_t bits_w,
                   const vmac::VmacConfig& vmac_cfg, bool ams_enabled, Rng& rng,
                   vmac::InjectionMode mode, std::uint64_t noise_stream,
                   const vmac::DeviceProfile& device)
    : conv_(opts, bits_w, rng),
      injector_(vmac_cfg, opts.in_channels * opts.kernel * opts.kernel,
                rng.split(noise_stream), mode, device),
      bn_(opts.out_channels) {
    injector_.set_enabled(ams_enabled);
}

Tensor ConvUnit::forward(const Tensor& input) {
    Tensor x = conv_.forward(input);
    x = injector_.forward(x);
    if (recording_) stats_.accumulate(x);
    return bn_.forward(x);
}

Shape ConvUnit::plan(const Shape& in, runtime::EvalContext& ctx) {
    Shape s = conv_.plan(in, ctx);
    s = injector_.plan(s, ctx);
    return bn_.plan(s, ctx);
}

Tensor ConvUnit::forward(const Tensor& input, runtime::EvalContext& ctx) {
    Tensor x = conv_.forward(input, ctx);
    x = injector_.forward(x, ctx);
    if (recording_) stats_.accumulate(x);
    return bn_.forward(x, ctx);
}

Tensor ConvUnit::backward(const Tensor& grad_output) {
    Tensor g = bn_.backward(grad_output);
    g = injector_.backward(g);
    return conv_.backward(g);
}

std::vector<nn::Parameter*> ConvUnit::parameters() {
    auto params = conv_.parameters();
    auto bn_params = bn_.parameters();
    params.insert(params.end(), bn_params.begin(), bn_params.end());
    return params;
}

void ConvUnit::set_training(bool training) {
    nn::Module::set_training(training);
    conv_.set_training(training);
    injector_.set_training(training);
    bn_.set_training(training);
}

void ConvUnit::collect_state(const std::string& prefix, TensorMap& out) const {
    conv_.collect_state(prefix + "conv.", out);
    bn_.collect_state(prefix + "bn.", out);
}

void ConvUnit::load_state(const std::string& prefix, const TensorMap& in) {
    conv_.load_state(prefix + "conv.", in);
    bn_.load_state(prefix + "bn.", in);
}

}  // namespace ams::models
