// Residual blocks (basic and bottleneck) with quantization and AMS error
// injection in every convolution, mirroring ResNet-50's block structure.
#pragma once

#include <memory>

#include "models/conv_unit.hpp"

namespace ams::models {

/// Options shared by all layers of a network build.
struct LayerCommon {
    std::size_t bits_w = 32;  ///< weight bits (kFloatBits = no quantization)
    std::size_t bits_x = 32;  ///< activation bits
    vmac::VmacConfig vmac;    ///< ENOB / Nmult for the injectors
    bool ams_enabled = false;
    vmac::InjectionMode mode = vmac::InjectionMode::kLumpedGaussian;
    /// Per-chip statics (offsets/drift) layered into every injector;
    /// inactive by default, so legacy builds are untouched.
    vmac::DeviceProfile device{};
};

/// Creates the activation used throughout a build: QuantAct(bits_x) for
/// quantized networks, plain ReLU for the FP32 baseline.
[[nodiscard]] std::unique_ptr<nn::Module> make_activation(const LayerCommon& common);

/// Common interface of the residual blocks: lets the network builder
/// enumerate every conv unit for freezing / recording / retuning.
class ResidualBlock : public nn::Module {
public:
    [[nodiscard]] virtual std::vector<ConvUnit*> conv_units() = 0;
};

/// ResNet bottleneck block: 1x1 reduce -> 3x3 -> 1x1 expand, with an
/// identity or 1x1-projection shortcut. The block-leading activation is
/// shared by the main path and the projection (post-activation ResNet
/// topology); the shortcut addition is digital, so no AMS error is added
/// at the join (paper Sec. 2: partial sums accumulate digitally).
class BottleneckBlock : public ResidualBlock {
public:
    /// mid = out_channels / 4 as in ResNet-50. A projection shortcut is
    /// inserted iff stride != 1 or in_channels != out_channels.
    BottleneckBlock(std::size_t in_channels, std::size_t out_channels, std::size_t stride,
                    const LayerCommon& common, Rng& rng, std::uint64_t noise_stream);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<nn::Parameter*> parameters() override;
    void set_training(bool training) override;
    [[nodiscard]] std::string name() const override { return "BottleneckBlock"; }

    void collect_state(const std::string& prefix, TensorMap& out) const override;
    void load_state(const std::string& prefix, const TensorMap& in) override;

    /// All conv units of this block (3 or 4 with projection), in order.
    [[nodiscard]] std::vector<ConvUnit*> conv_units() override;

    /// Structure accessors for the graph compiler (call order: act_in,
    /// unit1, act1, unit2, act2, unit3, then projection, then the add).
    [[nodiscard]] nn::Module& act_in() { return *act_in_; }
    [[nodiscard]] ConvUnit& unit1() { return *unit1_; }
    [[nodiscard]] nn::Module& act1() { return *act1_; }
    [[nodiscard]] ConvUnit& unit2() { return *unit2_; }
    [[nodiscard]] nn::Module& act2() { return *act2_; }
    [[nodiscard]] ConvUnit& unit3() { return *unit3_; }
    [[nodiscard]] ConvUnit* projection() { return projection_.get(); }

private:
    std::unique_ptr<nn::Module> act_in_;
    std::unique_ptr<ConvUnit> unit1_;
    std::unique_ptr<nn::Module> act1_;
    std::unique_ptr<ConvUnit> unit2_;
    std::unique_ptr<nn::Module> act2_;
    std::unique_ptr<ConvUnit> unit3_;
    std::unique_ptr<ConvUnit> projection_;  ///< null for identity shortcut
};

/// ResNet basic block: two 3x3 convolutions (used by the smaller presets).
class BasicBlock : public ResidualBlock {
public:
    BasicBlock(std::size_t in_channels, std::size_t out_channels, std::size_t stride,
               const LayerCommon& common, Rng& rng, std::uint64_t noise_stream);

    Tensor forward(const Tensor& input) override;
    Shape plan(const Shape& in, runtime::EvalContext& ctx) override;
    Tensor forward(const Tensor& input, runtime::EvalContext& ctx) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<nn::Parameter*> parameters() override;
    void set_training(bool training) override;
    [[nodiscard]] std::string name() const override { return "BasicBlock"; }

    void collect_state(const std::string& prefix, TensorMap& out) const override;
    void load_state(const std::string& prefix, const TensorMap& in) override;

    [[nodiscard]] std::vector<ConvUnit*> conv_units() override;

    /// Structure accessors for the graph compiler (call order: act_in,
    /// unit1, act1, unit2, then projection, then the add).
    [[nodiscard]] nn::Module& act_in() { return *act_in_; }
    [[nodiscard]] ConvUnit& unit1() { return *unit1_; }
    [[nodiscard]] nn::Module& act1() { return *act1_; }
    [[nodiscard]] ConvUnit& unit2() { return *unit2_; }
    [[nodiscard]] ConvUnit* projection() { return projection_.get(); }

private:
    std::unique_ptr<nn::Module> act_in_;
    std::unique_ptr<ConvUnit> unit1_;
    std::unique_ptr<nn::Module> act1_;
    std::unique_ptr<ConvUnit> unit2_;
    std::unique_ptr<ConvUnit> projection_;
};

}  // namespace ams::models
