#include "runtime/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "runtime/trace.hpp"

namespace ams::runtime {

namespace {

thread_local bool t_in_region = false;

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu

}  // namespace

RegionGuard::RegionGuard() : previous_(t_in_region) {
    t_in_region = true;
}

RegionGuard::~RegionGuard() {
    t_in_region = previous_;
}

bool ThreadPool::in_parallel_region() {
    return t_in_region;
}

std::size_t ThreadPool::threads_from_env() {
    if (const char* env = std::getenv("AMSNET_THREADS"); env != nullptr && *env != '\0') {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

ThreadPool& ThreadPool::global() {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads_from_env());
    return *g_pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    g_pool = std::make_unique<ThreadPool>(threads);
}

ThreadPool::ThreadPool(std::size_t threads) {
    const std::size_t workers = threads <= 1 ? 0 : threads - 1;
    queues_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        queues_.push_back(std::make_unique<WorkQueue>());
    }
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    stop_.store(true, std::memory_order_release);
    {
        // Empty critical section: pairs with the wait in worker_loop so no
        // worker can miss the notify between its predicate check and sleep.
        std::lock_guard<std::mutex> lock(wake_mu_);
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(Task task) {
    if (queues_.empty()) {
        task();
        return;
    }
    const std::size_t slot =
        next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    {
        std::lock_guard<std::mutex> lock(queues_[slot]->mu);
        queues_[slot]->tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
    wake_cv_.notify_one();
}

bool ThreadPool::try_pop_local(std::size_t id, Task& out) {
    WorkQueue& q = *queues_[id];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) return false;
    out = std::move(q.tasks.back());  // LIFO: most recently pushed is cache-warm
    q.tasks.pop_back();
    return true;
}

bool ThreadPool::try_steal(std::size_t thief, Task& out) {
    const std::size_t n = queues_.size();
    for (std::size_t i = 1; i < n; ++i) {
        WorkQueue& q = *queues_[(thief + i) % n];
        std::lock_guard<std::mutex> lock(q.mu);
        if (q.tasks.empty()) continue;
        out = std::move(q.tasks.front());  // FIFO: steal the oldest (largest) work
        q.tasks.pop_front();
        return true;
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t id) {
    // Name this worker's track in exported traces (one-time, off the hot
    // path; harmless when tracing never turns on).
    trace::set_thread_label(("worker-" + std::to_string(id)).c_str());
    for (;;) {
        Task task;
        if (try_pop_local(id, task) || try_steal(id, task)) {
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_cv_.wait(lock, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0) {
            return;
        }
    }
}

}  // namespace ams::runtime
