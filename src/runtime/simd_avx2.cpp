// AVX2/FMA arms of the elementwise primitives in runtime/simd.hpp.
//
// This translation unit is compiled with -mavx2 -mfma (see
// runtime/CMakeLists.txt) and must therefore contain no code that runs
// unconditionally at startup: everything here is reached only through
// the dispatch in simd.cpp after a cpuid check.
//
// Tails are handled with masked loads/stores so every element — body or
// remainder — goes through the same vector expression; results are
// independent of n's divisibility and of how callers chunk ranges.
#include <cstddef>
#include <cstdint>

#if defined(AMSNET_HAVE_AVX2)

#include <immintrin.h>

namespace ams::simd::detail {

namespace {

// mask_for(r) with r in [0, 8]: first r lanes all-ones (maskload/maskstore
// select on the top bit of each 32-bit lane).
alignas(32) constexpr std::int32_t kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                     0,  0,  0,  0,  0,  0,  0,  0};

inline __m256i mask_for(std::size_t r) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMaskTable + 8 - r));
}

/// Applies `op` ( __m256 -> __m256 ) over [0, n) with a masked tail.
template <typename Op>
inline void map8(const float* in, float* out, std::size_t n, Op op) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, op(_mm256_loadu_ps(in + i)));
    }
    if (const std::size_t r = n - i; r != 0) {
        const __m256i m = mask_for(r);
        _mm256_maskstore_ps(out + i, m, op(_mm256_maskload_ps(in + i, m)));
    }
}

}  // namespace

void relu_avx2(const float* in, float* out, std::size_t n) {
    const __m256 zero = _mm256_setzero_ps();
    map8(in, out, n, [zero](__m256 x) { return _mm256_max_ps(x, zero); });
}

void clipped_relu_avx2(const float* in, float* out, std::size_t n, float ceiling) {
    const __m256 zero = _mm256_setzero_ps();
    const __m256 hi = _mm256_set1_ps(ceiling);
    map8(in, out, n,
         [zero, hi](__m256 x) { return _mm256_min_ps(_mm256_max_ps(x, zero), hi); });
}

void clamp_avx2(const float* in, float* out, std::size_t n, float lo, float hi) {
    const __m256 vlo = _mm256_set1_ps(lo);
    const __m256 vhi = _mm256_set1_ps(hi);
    map8(in, out, n,
         [vlo, vhi](__m256 x) { return _mm256_min_ps(_mm256_max_ps(x, vlo), vhi); });
}

void scale_clamp_avx2(const float* in, float* out, std::size_t n, float scale, float lo,
                      float hi) {
    const __m256 vs = _mm256_set1_ps(scale);
    const __m256 vlo = _mm256_set1_ps(lo);
    const __m256 vhi = _mm256_set1_ps(hi);
    map8(in, out, n, [vs, vlo, vhi](__m256 x) {
        return _mm256_min_ps(_mm256_max_ps(_mm256_mul_ps(x, vs), vlo), vhi);
    });
}

void bn_normalize_avx2(const float* in, float* out, std::size_t n, float mean, float inv_std,
                       float gamma, float beta) {
    // (x - mean) * (gamma * inv_std) + beta, folded into one FMA.
    const __m256 vm = _mm256_set1_ps(mean);
    const __m256 vs = _mm256_set1_ps(gamma * inv_std);
    const __m256 vb = _mm256_set1_ps(beta);
    map8(in, out, n, [vm, vs, vb](__m256 x) {
        return _mm256_fmadd_ps(_mm256_sub_ps(x, vm), vs, vb);
    });
}

void quantize_unit_avx2(const float* in, float* out, std::size_t n, float levels) {
    // round-half-away-from-zero on a non-negative argument == floor(x+0.5).
    const __m256 zero = _mm256_setzero_ps();
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 vn = _mm256_set1_ps(levels);
    map8(in, out, n, [zero, one, half, vn](__m256 x) {
        const __m256 c = _mm256_min_ps(_mm256_max_ps(x, zero), one);
        const __m256 r = _mm256_floor_ps(_mm256_fmadd_ps(c, vn, half));
        return _mm256_div_ps(r, vn);
    });
}

void quantize_signed_avx2(const float* in, float* out, std::size_t n, float levels) {
    const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    const __m256 sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000u));
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 vn = _mm256_set1_ps(levels);
    map8(in, out, n, [abs_mask, sign_mask, half, vn](__m256 x) {
        const __m256 ax = _mm256_and_ps(x, abs_mask);
        const __m256 mag =
            _mm256_div_ps(_mm256_floor_ps(_mm256_fmadd_ps(ax, vn, half)), vn);
        return _mm256_or_ps(mag, _mm256_and_ps(x, sign_mask));
    });
}

}  // namespace ams::simd::detail

#endif  // AMSNET_HAVE_AVX2
