// AVX2/FMA arms of the elementwise primitives in runtime/simd.hpp.
//
// This translation unit is compiled with -mavx2 -mfma (see
// runtime/CMakeLists.txt) and must therefore contain no code that runs
// unconditionally at startup: everything here is reached only through
// the dispatch in simd.cpp after a cpuid check.
//
// Tails are handled with masked loads/stores so every element — body or
// remainder — goes through the same vector expression; results are
// independent of n's divisibility and of how callers chunk ranges.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(AMSNET_HAVE_AVX2)

#include <immintrin.h>

namespace ams::simd::detail {

namespace {

// mask_for(r) with r in [0, 8]: first r lanes all-ones (maskload/maskstore
// select on the top bit of each 32-bit lane).
alignas(32) constexpr std::int32_t kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                     0,  0,  0,  0,  0,  0,  0,  0};

inline __m256i mask_for(std::size_t r) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMaskTable + 8 - r));
}

/// Applies `op` ( __m256 -> __m256 ) over [0, n) with a masked tail.
template <typename Op>
inline void map8(const float* in, float* out, std::size_t n, Op op) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, op(_mm256_loadu_ps(in + i)));
    }
    if (const std::size_t r = n - i; r != 0) {
        const __m256i m = mask_for(r);
        _mm256_maskstore_ps(out + i, m, op(_mm256_maskload_ps(in + i, m)));
    }
}

}  // namespace

void relu_avx2(const float* in, float* out, std::size_t n) {
    const __m256 zero = _mm256_setzero_ps();
    map8(in, out, n, [zero](__m256 x) { return _mm256_max_ps(x, zero); });
}

void clipped_relu_avx2(const float* in, float* out, std::size_t n, float ceiling) {
    const __m256 zero = _mm256_setzero_ps();
    const __m256 hi = _mm256_set1_ps(ceiling);
    map8(in, out, n,
         [zero, hi](__m256 x) { return _mm256_min_ps(_mm256_max_ps(x, zero), hi); });
}

void clamp_avx2(const float* in, float* out, std::size_t n, float lo, float hi) {
    const __m256 vlo = _mm256_set1_ps(lo);
    const __m256 vhi = _mm256_set1_ps(hi);
    map8(in, out, n,
         [vlo, vhi](__m256 x) { return _mm256_min_ps(_mm256_max_ps(x, vlo), vhi); });
}

void scale_clamp_avx2(const float* in, float* out, std::size_t n, float scale, float lo,
                      float hi) {
    const __m256 vs = _mm256_set1_ps(scale);
    const __m256 vlo = _mm256_set1_ps(lo);
    const __m256 vhi = _mm256_set1_ps(hi);
    map8(in, out, n, [vs, vlo, vhi](__m256 x) {
        return _mm256_min_ps(_mm256_max_ps(_mm256_mul_ps(x, vs), vlo), vhi);
    });
}

void bn_normalize_avx2(const float* in, float* out, std::size_t n, float mean, float inv_std,
                       float gamma, float beta) {
    // (x - mean) * (gamma * inv_std) + beta, folded into one FMA.
    const __m256 vm = _mm256_set1_ps(mean);
    const __m256 vs = _mm256_set1_ps(gamma * inv_std);
    const __m256 vb = _mm256_set1_ps(beta);
    map8(in, out, n, [vm, vs, vb](__m256 x) {
        return _mm256_fmadd_ps(_mm256_sub_ps(x, vm), vs, vb);
    });
}

void quantize_unit_avx2(const float* in, float* out, std::size_t n, float levels) {
    // round-half-away-from-zero on a non-negative argument == floor(x+0.5).
    const __m256 zero = _mm256_setzero_ps();
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 vn = _mm256_set1_ps(levels);
    map8(in, out, n, [zero, one, half, vn](__m256 x) {
        const __m256 c = _mm256_min_ps(_mm256_max_ps(x, zero), one);
        const __m256 r = _mm256_floor_ps(_mm256_fmadd_ps(c, vn, half));
        return _mm256_div_ps(r, vn);
    });
}

void quantize_signed_avx2(const float* in, float* out, std::size_t n, float levels) {
    const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    const __m256 sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000u));
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 vn = _mm256_set1_ps(levels);
    map8(in, out, n, [abs_mask, sign_mask, half, vn](__m256 x) {
        const __m256 ax = _mm256_and_ps(x, abs_mask);
        const __m256 mag =
            _mm256_div_ps(_mm256_floor_ps(_mm256_fmadd_ps(ax, vn, half)), vn);
        return _mm256_or_ps(mag, _mm256_and_ps(x, sign_mask));
    });
}

namespace {

/// Exact std::lround of each lane (|t| far below 2^31): cvtps_epi32
/// rounds half-to-even under the default MXCSR mode, so the only lanes
/// that can disagree with lround's half-away-from-zero are exact .5
/// ties. t - float(r) is computed exactly there (Sterbenz), so comparing
/// it against +/-0.5 identifies precisely the ties that rounded toward
/// zero, and one lane-masked add pushes them outward.
inline __m256i lround_epi32(__m256 t) {
    const __m256i r = _mm256_cvtps_epi32(t);
    const __m256 d = _mm256_sub_ps(t, _mm256_cvtepi32_ps(r));
    const __m256 zero = _mm256_setzero_ps();
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 nhalf = _mm256_set1_ps(-0.5f);
    const __m256 up = _mm256_and_ps(_mm256_cmp_ps(d, half, _CMP_EQ_OQ),
                                    _mm256_cmp_ps(t, zero, _CMP_GT_OQ));
    const __m256 dn = _mm256_and_ps(_mm256_cmp_ps(d, nhalf, _CMP_EQ_OQ),
                                    _mm256_cmp_ps(t, zero, _CMP_LT_OQ));
    return _mm256_add_epi32(_mm256_sub_epi32(r, _mm256_castps_si256(up)),
                            _mm256_castps_si256(dn));
}

/// clamp(lround(x * levels), lo, hi) per lane, clamped in the integer
/// domain exactly like the scalar arm.
inline __m256i encode_epi32(__m256 x, __m256 vn, __m256i lo, __m256i hi) {
    const __m256i r = lround_epi32(_mm256_mul_ps(x, vn));
    return _mm256_min_epi32(_mm256_max_epi32(r, lo), hi);
}

}  // namespace

void encode_unit_u8_avx2(const float* in, std::uint8_t* out, std::size_t n, float levels) {
    const __m256 vn = _mm256_set1_ps(levels);
    const __m256i lo = _mm256_setzero_si256();
    const __m256i hi = _mm256_set1_epi32(static_cast<std::int32_t>(levels));
    // Lane order after packs/packus interleaves the four source vectors'
    // 128-bit halves; one cross-lane dword permute restores i-order.
    const __m256i fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i a = encode_epi32(_mm256_loadu_ps(in + i), vn, lo, hi);
        const __m256i b = encode_epi32(_mm256_loadu_ps(in + i + 8), vn, lo, hi);
        const __m256i c = encode_epi32(_mm256_loadu_ps(in + i + 16), vn, lo, hi);
        const __m256i d = encode_epi32(_mm256_loadu_ps(in + i + 24), vn, lo, hi);
        const __m256i w = _mm256_packus_epi16(_mm256_packs_epi32(a, b),
                                              _mm256_packs_epi32(c, d));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_permutevar8x32_epi32(w, fix));
    }
    const long hil = static_cast<long>(levels);
    for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(std::clamp(std::lround(in[i] * levels), 0L, hil));
    }
}

namespace {

/// Shared body of the two int16 encoders (they differ only in the clamp
/// floor). packs_epi32 saturates to int16, but every lane is already
/// clamped to the grid range, so it only narrows.
template <typename LoadLo>
inline void encode_i16_avx2(const float* in, std::int16_t* out, std::size_t n, float levels,
                            __m256i lo, LoadLo scalar_tail) {
    const __m256 vn = _mm256_set1_ps(levels);
    const __m256i hi = _mm256_set1_epi32(static_cast<std::int32_t>(levels));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i a = encode_epi32(_mm256_loadu_ps(in + i), vn, lo, hi);
        const __m256i b = encode_epi32(_mm256_loadu_ps(in + i + 8), vn, lo, hi);
        const __m256i w = _mm256_permute4x64_epi64(_mm256_packs_epi32(a, b), 0b11011000);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), w);
    }
    for (; i < n; ++i) out[i] = scalar_tail(in[i]);
}

}  // namespace

void encode_unit_u16_avx2(const float* in, std::int16_t* out, std::size_t n, float levels) {
    const long hil = static_cast<long>(levels);
    encode_i16_avx2(in, out, n, levels, _mm256_setzero_si256(), [levels, hil](float x) {
        return static_cast<std::int16_t>(std::clamp(std::lround(x * levels), 0L, hil));
    });
}

void encode_signed_i16_avx2(const float* in, std::int16_t* out, std::size_t n, float levels) {
    const long hil = static_cast<long>(levels);
    encode_i16_avx2(in, out, n, levels,
                    _mm256_set1_epi32(-static_cast<std::int32_t>(levels)),
                    [levels, hil](float x) {
                        return static_cast<std::int16_t>(
                            std::clamp(std::lround(x * levels), -hil, hil));
                    });
}

}  // namespace ams::simd::detail

#endif  // AMSNET_HAVE_AVX2
