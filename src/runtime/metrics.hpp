// Monotonic counters and max-gauges: the "what happened" half of the
// observability layer (runtime/trace.hpp is the "when" half).
//
// Every hot layer of the library reports what it does through a fixed,
// enum-indexed set of process-wide counters — ADC conversions per
// hardware backend, GEMM calls and FLOPs, pack-buffer growths, arena
// high-water marks, checkpoint-cache hits — so benches and tests read
// one uniform ledger instead of hand-rolling their own bookkeeping.
//
// Cost contract (the reason this is not a pluggable sink interface):
//   * AMSNET_TRACE=off      — every record call is one relaxed atomic
//     bool load and a predicted-not-taken branch; bench_trace_overhead
//     proves the GEMM hot loop pays < 1% for it.
//   * AMSNET_TRACE=counters — counter adds are single relaxed atomic
//     increments, gauges a CAS max loop. No locks, no allocation: the
//     planned zero-allocation inference path stays allocation-free with
//     counters on (tests/trace_test.cpp proves it).
//   * AMSNET_TRACE=full     — counters plus the scoped spans of
//     runtime/trace.hpp (which may allocate; never use in alloc tests).
//
// Numerics contract: no counter or gauge ever feeds back into computed
// values or RNG stream selection, so outputs are bit-identical at every
// level (noise streams stay position-keyed; see EXPERIMENTS.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace ams::runtime::metrics {

/// Instrumentation level, resolved from AMSNET_TRACE on first use.
enum class Level : int {
    kOff = 0,       ///< record calls reduce to a load + branch
    kCounters = 1,  ///< counters/gauges active, spans compiled away
    kFull = 2,      ///< counters plus scoped spans (runtime/trace.hpp)
};

/// Parses "off" / "counters" / "full" (unknown values mean kOff).
[[nodiscard]] Level parse_level(const char* text);

/// Stable name of a level ("off" / "counters" / "full") — the inverse of
/// parse_level, used by benches recording their run environment.
[[nodiscard]] const char* level_name(Level level);

/// Current level. First call reads AMSNET_TRACE; later calls are a
/// relaxed atomic load.
[[nodiscard]] Level level();

/// Overrides the level (tests, benches). Does not clear accumulated
/// counters — call reset() for a fresh ledger.
void set_level(Level level);

/// The fixed counter taxonomy. Names (counter_name) are the stable
/// strings used by the exporters; add new counters at the end of a
/// group to keep exported files diffable.
enum class Counter : int {
    // GEMM entry points (tensor/gemm.cpp)
    kGemmCalls = 0,       ///< calls through any of the four fp32 entry points
    kGemmFlops,           ///< 2*M*K*N per call (fp32 and integer alike)
    kGemmPackGrowths,     ///< pack/transpose scratch buffer growths
    kGemmIntCalls,        ///< calls through the integer entry points (tensor/gemm_int.cpp)
    kRequantOps,          ///< int32 accumulators requantized back to a float grid

    // Parallel runtime (runtime/parallel_for.cpp)
    kParallelRegions,     ///< parallel_for regions dispatched to the pool
    kParallelChunks,      ///< chunks executed (serial fallback included)

    // ADC conversions per hardware backend (ams/vmac_backend.cpp) — the
    // source of truth the energy model's ConversionProfile is checked
    // against (tests/trace_test.cpp).
    kAdcConversionsBitExact,
    kAdcConversionsPerVmacNoise,
    kAdcConversionsPartitioned,
    kAdcConversionsDeltaSigma,
    kAdcConversionsReferenceScaled,
    kAdcConversionsBlockFp,
    kVmacChunks,          ///< accumulate() calls over all backends
    kVmacOutputs,         ///< output accumulators finished

    // Network-level error injection (ams/error_injector.cpp)
    kInjectedSamples,     ///< additive noise samples drawn

    // Checkpoint cache (train/checkpoint_cache.cpp)
    kCheckpointDiskHits,  ///< states served from an on-disk .amsckpt
    kCheckpointMemoHits,  ///< states served from the in-process memo
    kCheckpointMisses,    ///< states produced (trained) on demand
    kCheckpointCorruptRecovered,   ///< torn/corrupt entries recomputed, not propagated
    kCheckpointLegacyMigrations,   ///< legacy-named entries adopted under content hashes

    // Evaluation protocol (train/evaluate.cpp)
    kEvalPasses,          ///< full validation passes
    kEvalBatches,         ///< batches pushed through a model

    // Inference server (serve/server.cpp)
    kServeRequests,       ///< requests accepted by submit()
    kServeBatches,        ///< dynamic batches dispatched to an instance
    kServeBatchImages,    ///< images across all dispatched batches
    kServeQueueWaitNs,    ///< summed enqueue -> dequeue wait, nanoseconds

    // Graph compiler (compile/compiler.cpp)
    kPlanCompiles,                 ///< ExecutionPlans built
    kPlanRuns,                     ///< compiled-plan forward passes
    kPlanLayersFused,              ///< elementwise ops absorbed into step tails
    kPlanIntermediatesEliminated,  ///< module-walk tensors the plan never materializes
    kPlanArenaBytesSaved,          ///< module-walk arena bytes minus plan block bytes

    // Sweep orchestration (sweep/coordinator.cpp, sweep/worker.cpp)
    kSweepPointsCompleted,  ///< grid points computed and journaled by this process
    kSweepPointsSkipped,    ///< points replayed from journals instead of recomputed
    kSweepPointsStolen,     ///< resumed points reassigned away from their original shard
    kSweepWorkersSpawned,   ///< worker processes forked by the coordinator

    // Device variability (ams/device_variation.cpp, ams/error_injector.cpp)
    kVariationChunks,        ///< chunks routed through a DeviceVariation decorator
    kVariationFieldSamples,  ///< outputs perturbed by the network-level chip field

    kCount
};

/// Max-tracking gauges.
enum class Gauge : int {
    kArenaHighWaterBytes = 0,  ///< largest single-arena high-water mark seen
    kServeQueueDepthMax,       ///< deepest request queue any server reached
    kCount
};

namespace detail {

inline constexpr int kCounterCount = static_cast<int>(Counter::kCount);
inline constexpr int kGaugeCount = static_cast<int>(Gauge::kCount);

/// The enabled flag lives alone so the hot-path check inlines to a
/// one-byte load; the level itself is colder state in metrics.cpp.
extern std::atomic<bool> g_counters_on;
extern std::atomic<bool> g_spans_on;
extern std::atomic<std::uint64_t> g_counters[kCounterCount];
extern std::atomic<std::uint64_t> g_gauges[kGaugeCount];

}  // namespace detail

/// True at kCounters or kFull.
[[nodiscard]] inline bool counters_enabled() {
    return detail::g_counters_on.load(std::memory_order_relaxed);
}

/// True only at kFull (spans may allocate; see runtime/trace.hpp).
[[nodiscard]] inline bool spans_enabled() {
    return detail::g_spans_on.load(std::memory_order_relaxed);
}

/// Adds `n` to `counter`. Off: a load and a branch.
inline void add(Counter counter, std::uint64_t n = 1) {
    if (!counters_enabled()) return;
    detail::g_counters[static_cast<int>(counter)].fetch_add(n, std::memory_order_relaxed);
}

/// Raises `gauge` to at least `value` (monotonic max).
inline void gauge_max(Gauge gauge, std::uint64_t value) {
    if (!counters_enabled()) return;
    std::atomic<std::uint64_t>& g = detail::g_gauges[static_cast<int>(gauge)];
    std::uint64_t seen = g.load(std::memory_order_relaxed);
    while (seen < value &&
           !g.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
}

/// Current value (readable at any level; counters simply stay 0 when off).
[[nodiscard]] std::uint64_t value(Counter counter);
[[nodiscard]] std::uint64_t gauge_value(Gauge gauge);

/// Zeroes every counter and gauge.
void reset();

/// Stable lower_snake_case export names.
[[nodiscard]] const char* counter_name(Counter counter);
[[nodiscard]] const char* gauge_name(Gauge gauge);

/// Flat snapshot exporters: one {"name": value} JSON object, or two-column
/// name,value CSV — the metrics.json / metrics.csv summary artifacts.
void write_metrics_json(std::ostream& os);
void write_metrics_csv(std::ostream& os);
/// Convenience: writes to `path` (".csv" suffix selects CSV, anything
/// else JSON), creating parent directories. Throws std::runtime_error on
/// I/O failure.
void write_metrics_file(const std::string& path);

/// AMSNET_METRICS_DUMP=<path>: when set, the current counter snapshot is
/// exported to <path> through write_metrics_file at process exit (the
/// atexit hook is registered the first time the metrics level is
/// resolved) and whenever this function is called explicitly — the
/// inference server calls it on shutdown so serving runs drop their
/// ledger without bespoke wiring. Returns true if a file was written.
/// Never throws: export failures are reported on stderr (the process is
/// usually past the point of recovering).
bool dump_snapshot_if_configured();

}  // namespace ams::runtime::metrics
