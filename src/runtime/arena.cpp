#include "runtime/arena.hpp"

#include <algorithm>
#include <new>

#include "runtime/metrics.hpp"

namespace ams::runtime {

namespace {

std::size_t round_up(std::size_t n, std::size_t align) {
    return (n + align - 1) / align * align;
}

}  // namespace

TensorArena::TensorArena(std::size_t initial_bytes, std::size_t max_bytes)
    : initial_bytes_(std::max<std::size_t>(round_up(std::max<std::size_t>(initial_bytes, 1),
                                                    kAlignment),
                                           kAlignment)),
      max_bytes_(max_bytes) {}

TensorArena::~TensorArena() {
    for (Block& b : blocks_) {
        ::operator delete[](b.data, std::align_val_t{kAlignment});
    }
}

void TensorArena::add_block(std::size_t min_bytes) {
    std::size_t want = initial_bytes_;
    for (const Block& b : blocks_) want = std::max(want, b.capacity * 2);
    want = std::max(want, round_up(min_bytes, kAlignment));
    if (max_bytes_ != 0 && capacity() + want > max_bytes_) {
        // Retry at the exact request before giving up: the doubling
        // heuristic must not trip the cap when the request itself fits.
        want = round_up(min_bytes, kAlignment);
        if (capacity() + want > max_bytes_) throw std::bad_alloc();
    }
    Block b;
    b.data = static_cast<std::byte*>(
        ::operator new[](want, std::align_val_t{kAlignment}));
    b.capacity = want;
    b.used = 0;
    blocks_.push_back(b);
}

void* TensorArena::allocate(std::size_t bytes) {
    const std::size_t need = round_up(std::max<std::size_t>(bytes, 1), kAlignment);
    if (blocks_.empty()) add_block(need);
    // Advance past full blocks (they may have been retained by a rewind).
    while (blocks_[current_].capacity - blocks_[current_].used < need) {
        if (current_ + 1 == blocks_.size()) add_block(need);
        ++current_;
        // A retained block that is too small is skipped, not reused.
    }
    Block& b = blocks_[current_];
    void* p = b.data + b.used;
    b.used += need;
    const std::size_t live = in_use();
    if (live > high_water_) {
        high_water_ = live;
        // Process-wide gauge: the largest single-arena footprint any
        // worker reached (monotonic, so steady-state passes — where the
        // HWM no longer moves — pay nothing beyond the member update).
        metrics::gauge_max(metrics::Gauge::kArenaHighWaterBytes,
                           static_cast<std::uint64_t>(high_water_));
    }
    return p;
}

float* TensorArena::allocate_floats(std::size_t count) {
    return static_cast<float*>(allocate(count * sizeof(float)));
}

TensorArena::Checkpoint TensorArena::checkpoint() const {
    Checkpoint cp;
    cp.block = current_;
    cp.used = blocks_.empty() ? 0 : blocks_[current_].used;
    return cp;
}

void TensorArena::rewind(const Checkpoint& cp) {
    if (blocks_.empty()) return;
    current_ = std::min(cp.block, blocks_.size() - 1);
    blocks_[current_].used = std::min(cp.used, blocks_[current_].capacity);
    for (std::size_t i = current_ + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
}

void TensorArena::reset() {
    rewind(Checkpoint{});
}

std::size_t TensorArena::in_use() const {
    std::size_t n = 0;
    for (const Block& b : blocks_) n += b.used;
    return n;
}

std::size_t TensorArena::capacity() const {
    std::size_t n = 0;
    for (const Block& b : blocks_) n += b.capacity;
    return n;
}

}  // namespace ams::runtime
