// RngStream: scheduling-independent random streams for parallel kernels.
//
// A sequential Rng member makes injected noise depend on the order tiles
// happen to execute in — unusable under a work-stealing pool. RngStream
// instead holds a root seed and derives an independent xoshiro256**
// generator for any (seed, stream_id) pair through SplitMix64, so tile
// `i` of forward pass `e` always sees the same deviates no matter which
// thread computes it or when. This is the counter-based splitting scheme
// of JAX/aihwkit-style reproducible noise injection, built on the repo's
// existing SplitMix64/xoshiro primitives.
//
// Stream ids are data coordinates (tile index, forward-pass epoch, layer
// id) — never thread ids. See the determinism contract in
// runtime/thread_pool.hpp.
#pragma once

#include <cstdint>

#include "tensor/rng.hpp"

namespace ams::runtime {

class RngStream {
public:
    explicit RngStream(std::uint64_t seed) : seed_(seed) {}

    /// Captures a splitter from an existing generator's output (consumes
    /// one draw of `base`); lets call sites keep their `Rng rng` seams.
    [[nodiscard]] static RngStream from(Rng base) { return RngStream(base.next_u64()); }

    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /// Independent generator for stream `stream_id`. Pure: calling it
    /// never advances any state, so it is safe from concurrent tiles.
    [[nodiscard]] Rng stream(std::uint64_t stream_id) const {
        return Rng(derive(stream_id));
    }

    /// Child splitter — e.g. one per forward pass, then one generator per
    /// tile: streams.substream(epoch).stream(tile).
    [[nodiscard]] RngStream substream(std::uint64_t stream_id) const {
        return RngStream(derive(stream_id));
    }

private:
    [[nodiscard]] std::uint64_t derive(std::uint64_t stream_id) const {
        // Two SplitMix64 applications keyed by seed then id: adjacent ids
        // land in unrelated regions of xoshiro seed space (same rationale
        // as Rng::split, but without reading mutable generator state).
        SplitMix64 root(seed_);
        SplitMix64 leaf(root.next() ^ (stream_id + 0x9E3779B97F4A7C15ULL));
        return leaf.next();
    }

    std::uint64_t seed_;
};

}  // namespace ams::runtime
