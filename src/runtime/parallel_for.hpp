// parallel_for: the one loop-parallelism primitive of the library.
//
// Splits [begin, end) into chunks of at most `grain` indices and runs
// `body(chunk_begin, chunk_end)` across the global thread pool, with the
// calling thread participating. Guarantees:
//
//   * The chunk decomposition depends only on (begin, end, grain) — never
//     on the thread count — and the serial fallback executes the exact
//     same chunks in order, so a body that is deterministic per chunk
//     yields bit-identical results at any AMSNET_THREADS.
//   * Exceptions thrown by the body are captured (first one wins),
//     remaining chunks are skipped, and the exception is rethrown on the
//     calling thread after the region drains.
//   * Nested calls (a body that itself calls parallel_for) fall back to
//     serial execution instead of deadlocking or oversubscribing.
//   * The serial path performs zero heap allocations: the body is passed
//     as a (context, function-pointer) pair rather than a std::function,
//     so hot loops inside the arena-backed eval path stay allocation-free
//     when the pool is serial or the region is nested.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>

#include "runtime/thread_pool.hpp"

namespace ams::runtime {

namespace detail {

/// Type-erased body: `fn(ctx, chunk_begin, chunk_end)`.
using ChunkFn = void (*)(void*, std::size_t, std::size_t);

void parallel_for_erased(std::size_t begin, std::size_t end, std::size_t grain, void* ctx,
                         ChunkFn fn);

}  // namespace detail

/// Runs `body(chunk_begin, chunk_end)` over [begin, end) in chunks of at
/// most `grain` (0 is treated as 1). Blocks until every chunk finished;
/// rethrows the first exception any chunk threw.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, Body&& body) {
    using Fn = std::remove_reference_t<Body>;
    detail::parallel_for_erased(
        begin, end, grain,
        const_cast<void*>(static_cast<const void*>(std::addressof(body))),
        [](void* ctx, std::size_t lo, std::size_t hi) { (*static_cast<Fn*>(ctx))(lo, hi); });
}

/// Grain that yields ~4 chunks per executor (enough slack for stealing to
/// balance uneven chunks), floored at `min_chunk` so tiny ranges are not
/// shredded into per-index tasks. Returns `total` (one chunk) when the
/// pool is serial.
[[nodiscard]] std::size_t suggest_grain(std::size_t total, std::size_t min_chunk = 1);

}  // namespace ams::runtime
