// parallel_for: the one loop-parallelism primitive of the library.
//
// Splits [begin, end) into chunks of at most `grain` indices and runs
// `body(chunk_begin, chunk_end)` across the global thread pool, with the
// calling thread participating. Guarantees:
//
//   * The chunk decomposition depends only on (begin, end, grain) — never
//     on the thread count — and the serial fallback executes the exact
//     same chunks in order, so a body that is deterministic per chunk
//     yields bit-identical results at any AMSNET_THREADS.
//   * Exceptions thrown by the body are captured (first one wins),
//     remaining chunks are skipped, and the exception is rethrown on the
//     calling thread after the region drains.
//   * Nested calls (a body that itself calls parallel_for) fall back to
//     serial execution instead of deadlocking or oversubscribing.
#pragma once

#include <cstddef>
#include <functional>

#include "runtime/thread_pool.hpp"

namespace ams::runtime {

/// Runs `body(chunk_begin, chunk_end)` over [begin, end) in chunks of at
/// most `grain` (0 is treated as 1). Blocks until every chunk finished;
/// rethrows the first exception any chunk threw.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Grain that yields ~4 chunks per executor (enough slack for stealing to
/// balance uneven chunks), floored at `min_chunk` so tiny ranges are not
/// shredded into per-index tasks. Returns `total` (one chunk) when the
/// pool is serial.
[[nodiscard]] std::size_t suggest_grain(std::size_t total, std::size_t min_chunk = 1);

}  // namespace ams::runtime
