// EvalContext: the per-worker execution context for planned inference.
//
// One EvalContext is owned by each evaluation worker (serial eval owns a
// single one). It carries everything a forward pass needs besides the
// model itself:
//
//   * an *activations* arena — rewound between images/batches, holds the
//     layer outputs of the pass in flight;
//   * a *scratch* arena — never rewound, holds per-layer workspaces
//     (im2col columns, quantized-weight buffers) that are reserved once
//     during planning/warm-up and reused on every subsequent pass;
//   * a scratch registry keyed by (module, slot) so a module can find its
//     workspace again without storing raw pointers in itself;
//   * the thread-pool handle and an RngStream root, so the context fully
//     describes "where and how" a pass executes.
//
// The runtime layer knows nothing about Tensor; it deals in raw float
// buffers. nn::arena_output() (nn/module.hpp) wraps an activation
// allocation into a borrowed Tensor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "runtime/arena.hpp"
#include "runtime/rng_stream.hpp"
#include "runtime/thread_pool.hpp"

namespace ams::runtime {

class EvalContext {
public:
    explicit EvalContext(std::uint64_t rng_seed = 0x243F6A8885A308D3ULL,
                         std::size_t initial_activation_bytes = 1u << 20,
                         std::size_t initial_scratch_bytes = 1u << 20);

    EvalContext(const EvalContext&) = delete;
    EvalContext& operator=(const EvalContext&) = delete;

    // ----- activations (rewound between images) -----
    [[nodiscard]] float* alloc_activation(std::size_t count) {
        return activations_.allocate_floats(count);
    }
    [[nodiscard]] TensorArena::Checkpoint checkpoint() const {
        return activations_.checkpoint();
    }
    void rewind(const TensorArena::Checkpoint& cp) { activations_.rewind(cp); }

    [[nodiscard]] TensorArena& activations() { return activations_; }

    // ----- per-layer scratch (persistent across passes) -----
    /// Returns a workspace of at least `floats` floats for (owner, slot).
    /// The first call allocates from the scratch arena; later calls with
    /// the same key reuse the buffer as long as it is big enough, and
    /// re-reserve a larger one otherwise (the old region stays parked in
    /// the arena — growth only happens on a shape change, so this is
    /// bounded). After warm-up this is a hash lookup: no heap activity.
    [[nodiscard]] float* reserve_scratch(const void* owner, int slot, std::size_t floats);

    [[nodiscard]] TensorArena& scratch_arena() { return scratch_; }

    // ----- environment -----
    [[nodiscard]] ThreadPool& pool() const { return *pool_; }
    [[nodiscard]] const RngStream& rng_root() const { return rng_root_; }

    /// Peak bytes held across both arenas — the memory cost of one worker.
    [[nodiscard]] std::size_t high_water_mark() const {
        return activations_.high_water_mark() + scratch_.high_water_mark();
    }

private:
    struct Key {
        const void* owner;
        int slot;
        bool operator==(const Key& o) const { return owner == o.owner && slot == o.slot; }
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const {
            // Pointer bits mixed with the slot; fine for a registry of a
            // few dozen entries.
            const auto p = reinterpret_cast<std::uintptr_t>(k.owner);
            return std::hash<std::uintptr_t>{}(p ^ (static_cast<std::uintptr_t>(k.slot) << 48) ^
                                               (static_cast<std::uintptr_t>(k.slot) * 0x9E3779B9u));
        }
    };
    struct Entry {
        float* data = nullptr;
        std::size_t count = 0;
    };

    TensorArena activations_;
    TensorArena scratch_;
    std::unordered_map<Key, Entry, KeyHash> registry_;
    RngStream rng_root_;
    ThreadPool* pool_;
};

}  // namespace ams::runtime
