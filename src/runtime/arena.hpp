// TensorArena: bump allocator backing the zero-allocation inference path.
//
// The eval loop re-runs the same forward graph thousands of times (ENOB x
// energy sweeps, multi-pass validation); allocating every activation and
// im2col scratch buffer per call makes the general-purpose allocator the
// dominant serial cost. A TensorArena instead hands out pointers from
// pre-reserved blocks with a single pointer bump, and the caller rewinds
// the whole arena between images. Steady-state forward passes therefore
// perform zero heap allocations (see tests/alloc_count_test.cpp).
//
// Discipline:
//   * take a Checkpoint before a region, rewind to it after — nesting is
//     allowed as long as rewinds unwind in LIFO order;
//   * rewound memory is dead: a Tensor borrowed from the arena must not
//     outlive the rewind that releases it (ASan catches violations when
//     the tier-1 suite runs under AMSNET_SANITIZE=address);
//   * the arena grows by doubling when exhausted and never shrinks, so
//     after the first pass over a workload (the warm-up) all later passes
//     run allocation-free.
#pragma once

#include <cstddef>
#include <vector>

namespace ams::runtime {

class TensorArena {
public:
    /// Every allocation is aligned to this (cache line / AVX-512 friendly).
    static constexpr std::size_t kAlignment = 64;

    /// `initial_bytes` sizes the first block (allocated lazily on first
    /// use). `max_bytes` caps total capacity: 0 means unlimited; a
    /// nonzero cap makes `allocate` throw std::bad_alloc once growth
    /// would exceed it (the OOM policy — fail loudly, never hand out
    /// overlapping memory).
    explicit TensorArena(std::size_t initial_bytes = 1u << 20, std::size_t max_bytes = 0);
    ~TensorArena();

    TensorArena(const TensorArena&) = delete;
    TensorArena& operator=(const TensorArena&) = delete;

    /// Bump-allocates `bytes` aligned to kAlignment. Grows by doubling
    /// when the current block is exhausted; throws std::bad_alloc if a
    /// nonzero max_bytes cap would be exceeded.
    [[nodiscard]] void* allocate(std::size_t bytes);

    /// Convenience: `count` floats (the library's only element type).
    [[nodiscard]] float* allocate_floats(std::size_t count);

    /// A position in the arena; rewinding to it frees everything
    /// allocated after it was taken. Checkpoints nest LIFO.
    struct Checkpoint {
        std::size_t block = 0;  ///< active block index at capture
        std::size_t used = 0;   ///< bytes used in that block at capture
    };

    [[nodiscard]] Checkpoint checkpoint() const;
    void rewind(const Checkpoint& cp);
    /// Rewind to empty (keeps the blocks for reuse).
    void reset();

    // ----- stats -----
    [[nodiscard]] std::size_t in_use() const;           ///< live bytes right now
    [[nodiscard]] std::size_t capacity() const;         ///< total reserved bytes
    [[nodiscard]] std::size_t high_water_mark() const { return high_water_; }
    [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
    [[nodiscard]] std::size_t max_bytes() const { return max_bytes_; }

private:
    struct Block {
        std::byte* data = nullptr;
        std::size_t capacity = 0;
        std::size_t used = 0;
    };

    /// Appends a block of at least `min_bytes`, doubling the largest
    /// existing block. Throws std::bad_alloc on cap violation.
    void add_block(std::size_t min_bytes);

    std::vector<Block> blocks_;
    std::size_t current_ = 0;  ///< index of the block being bumped
    std::size_t initial_bytes_;
    std::size_t max_bytes_;
    std::size_t high_water_ = 0;
};

}  // namespace ams::runtime
