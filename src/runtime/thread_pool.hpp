// Work-stealing thread pool: the parallel substrate for every hot path.
//
// One process-wide pool (lazily initialized, sized by AMSNET_THREADS,
// default hardware_concurrency) executes the chunked loops issued by
// parallel_for. Each worker owns a deque; submissions round-robin across
// workers, a worker pops its own deque LIFO (cache-warm) and steals FIFO
// from its siblings when empty. The calling thread always participates in
// the region it issued, so a pool configured for N threads runs a region
// on exactly N executors (N-1 workers + the caller) and AMSNET_THREADS=1
// spawns no workers at all — the library degrades to the seed's serial
// behaviour.
//
// Reproducibility contract: nothing in this pool may influence numerics.
// Work distribution (which thread runs which chunk) is nondeterministic;
// every kernel wired onto the pool must therefore (a) write disjoint
// output ranges per chunk and (b) draw randomness only from RngStream
// tiles keyed by data position, never by thread identity (see
// runtime/rng_stream.hpp and the Runtime section of DESIGN.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ams::runtime {

class ThreadPool {
public:
    using Task = std::function<void()>;

    /// Creates a pool that runs parallel regions on `threads` executors:
    /// `threads - 1` worker threads plus the calling thread. `threads`
    /// of 0 or 1 both mean "serial" (no workers spawned).
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task. With no workers the task runs inline.
    void submit(Task task);

    /// Executors available to a parallel region (workers + caller).
    [[nodiscard]] std::size_t parallelism() const { return workers_.size() + 1; }
    [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

    /// The process-wide pool. First use reads AMSNET_THREADS (falls back
    /// to std::thread::hardware_concurrency, then 1).
    static ThreadPool& global();

    /// Replaces the global pool with one of the given size. Intended for
    /// tests and the scaling bench; must not be called while parallel
    /// work is in flight.
    static void set_global_threads(std::size_t threads);

    /// Thread count the global pool would use on first touch.
    [[nodiscard]] static std::size_t threads_from_env();

    /// True while the current thread executes inside a parallel region;
    /// parallel_for uses this to run nested calls serially.
    [[nodiscard]] static bool in_parallel_region();

private:
    friend class RegionGuard;

    struct WorkQueue {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    void worker_loop(std::size_t id);
    bool try_pop_local(std::size_t id, Task& out);
    bool try_steal(std::size_t thief, Task& out);

    std::vector<std::unique_ptr<WorkQueue>> queues_;  // one per worker
    std::vector<std::thread> workers_;
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> next_queue_{0};   // round-robin submit cursor
    std::atomic<std::size_t> pending_{0};      // queued, not yet dequeued
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
};

/// RAII marker for "this thread is executing a parallel region".
class RegionGuard {
public:
    RegionGuard();
    ~RegionGuard();
    RegionGuard(const RegionGuard&) = delete;
    RegionGuard& operator=(const RegionGuard&) = delete;

private:
    bool previous_;
};

}  // namespace ams::runtime
