#include "runtime/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>

namespace ams::runtime::metrics {

namespace detail {

std::atomic<bool> g_counters_on{false};
std::atomic<bool> g_spans_on{false};
std::atomic<std::uint64_t> g_counters[kCounterCount]{};
std::atomic<std::uint64_t> g_gauges[kGaugeCount]{};

}  // namespace detail

namespace {

std::atomic<int> g_level{-1};  // -1: not yet resolved from the environment

void apply(Level level) {
    detail::g_counters_on.store(level != Level::kOff, std::memory_order_relaxed);
    detail::g_spans_on.store(level == Level::kFull, std::memory_order_relaxed);
    g_level.store(static_cast<int>(level), std::memory_order_release);
}

/// Registers the AMSNET_METRICS_DUMP atexit exporter exactly once. Done
/// from level() — the first metrics touch of any instrumented process —
/// so benches and the server get the exit snapshot without calling
/// anything themselves.
void register_exit_dump() {
    static std::once_flag once;
    std::call_once(once, [] {
        if (std::getenv("AMSNET_METRICS_DUMP") != nullptr) {
            std::atexit([] { (void)dump_snapshot_if_configured(); });
        }
    });
}

}  // namespace

Level parse_level(const char* text) {
    if (text == nullptr) return Level::kOff;
    const std::string value(text);
    if (value == "counters") return Level::kCounters;
    if (value == "full") return Level::kFull;
    return Level::kOff;
}

const char* level_name(Level level) {
    switch (level) {
        case Level::kOff: return "off";
        case Level::kCounters: return "counters";
        case Level::kFull: return "full";
    }
    return "off";
}

Level level() {
    const int cached = g_level.load(std::memory_order_acquire);
    if (cached >= 0) return static_cast<Level>(cached);
    register_exit_dump();
    const Level env = parse_level(std::getenv("AMSNET_TRACE"));
    apply(env);
    return env;
}

void set_level(Level level) {
    apply(level);
}

std::uint64_t value(Counter counter) {
    return detail::g_counters[static_cast<int>(counter)].load(std::memory_order_relaxed);
}

std::uint64_t gauge_value(Gauge gauge) {
    return detail::g_gauges[static_cast<int>(gauge)].load(std::memory_order_relaxed);
}

void reset() {
    for (auto& c : detail::g_counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : detail::g_gauges) g.store(0, std::memory_order_relaxed);
}

const char* counter_name(Counter counter) {
    switch (counter) {
        case Counter::kGemmCalls: return "gemm_calls";
        case Counter::kGemmFlops: return "gemm_flops";
        case Counter::kGemmPackGrowths: return "gemm_pack_growths";
        case Counter::kGemmIntCalls: return "gemm_int_calls";
        case Counter::kRequantOps: return "requant_ops";
        case Counter::kParallelRegions: return "parallel_regions";
        case Counter::kParallelChunks: return "parallel_chunks";
        case Counter::kAdcConversionsBitExact: return "adc_conversions_bit_exact";
        case Counter::kAdcConversionsPerVmacNoise: return "adc_conversions_per_vmac_noise";
        case Counter::kAdcConversionsPartitioned: return "adc_conversions_partitioned";
        case Counter::kAdcConversionsDeltaSigma: return "adc_conversions_delta_sigma";
        case Counter::kAdcConversionsReferenceScaled:
            return "adc_conversions_reference_scaled";
        case Counter::kAdcConversionsBlockFp: return "adc_conversions_block_fp";
        case Counter::kVmacChunks: return "vmac_chunks";
        case Counter::kVmacOutputs: return "vmac_outputs";
        case Counter::kInjectedSamples: return "injected_samples";
        case Counter::kCheckpointDiskHits: return "checkpoint_disk_hits";
        case Counter::kCheckpointMemoHits: return "checkpoint_memo_hits";
        case Counter::kCheckpointMisses: return "checkpoint_misses";
        case Counter::kCheckpointCorruptRecovered: return "checkpoint_corrupt_recovered";
        case Counter::kCheckpointLegacyMigrations: return "checkpoint_legacy_migrations";
        case Counter::kEvalPasses: return "eval_passes";
        case Counter::kEvalBatches: return "eval_batches";
        case Counter::kServeRequests: return "serve_requests";
        case Counter::kServeBatches: return "serve_batches";
        case Counter::kServeBatchImages: return "serve_batch_images";
        case Counter::kServeQueueWaitNs: return "serve_queue_wait_ns";
        case Counter::kPlanCompiles: return "plan_compiles";
        case Counter::kPlanRuns: return "plan_runs";
        case Counter::kPlanLayersFused: return "plan_layers_fused";
        case Counter::kPlanIntermediatesEliminated: return "plan_intermediates_eliminated";
        case Counter::kPlanArenaBytesSaved: return "plan_arena_bytes_saved";
        case Counter::kSweepPointsCompleted: return "sweep_points_completed";
        case Counter::kSweepPointsSkipped: return "sweep_points_skipped";
        case Counter::kSweepPointsStolen: return "sweep_points_stolen";
        case Counter::kSweepWorkersSpawned: return "sweep_workers_spawned";
        case Counter::kVariationChunks: return "variation_chunks";
        case Counter::kVariationFieldSamples: return "variation_field_samples";
        case Counter::kCount: break;
    }
    return "unknown_counter";
}

const char* gauge_name(Gauge gauge) {
    switch (gauge) {
        case Gauge::kArenaHighWaterBytes: return "arena_high_water_bytes";
        case Gauge::kServeQueueDepthMax: return "serve_queue_depth_max";
        case Gauge::kCount: break;
    }
    return "unknown_gauge";
}

void write_metrics_json(std::ostream& os) {
    os << "{\n";
    for (int i = 0; i < detail::kCounterCount; ++i) {
        os << "  \"" << counter_name(static_cast<Counter>(i))
           << "\": " << value(static_cast<Counter>(i)) << ",\n";
    }
    for (int i = 0; i < detail::kGaugeCount; ++i) {
        os << "  \"" << gauge_name(static_cast<Gauge>(i))
           << "\": " << gauge_value(static_cast<Gauge>(i))
           << (i + 1 < detail::kGaugeCount ? ",\n" : "\n");
    }
    os << "}\n";
}

void write_metrics_csv(std::ostream& os) {
    os << "metric,value\n";
    for (int i = 0; i < detail::kCounterCount; ++i) {
        os << counter_name(static_cast<Counter>(i)) << ','
           << value(static_cast<Counter>(i)) << '\n';
    }
    for (int i = 0; i < detail::kGaugeCount; ++i) {
        os << gauge_name(static_cast<Gauge>(i)) << ','
           << gauge_value(static_cast<Gauge>(i)) << '\n';
    }
}

void write_metrics_file(const std::string& path) {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_metrics_file: cannot open " + path);
    if (p.extension() == ".csv") {
        write_metrics_csv(out);
    } else {
        write_metrics_json(out);
    }
    if (!out) throw std::runtime_error("write_metrics_file: write failed for " + path);
}

bool dump_snapshot_if_configured() {
    const char* path = std::getenv("AMSNET_METRICS_DUMP");
    if (path == nullptr || path[0] == '\0') return false;
    try {
        write_metrics_file(path);
        return true;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "amsnet: AMSNET_METRICS_DUMP export failed: %s\n", e.what());
        return false;
    }
}

}  // namespace ams::runtime::metrics
