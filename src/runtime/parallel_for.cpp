#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "runtime/metrics.hpp"
#include "runtime/trace.hpp"

namespace ams::runtime {

namespace {

struct RegionState {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t n_chunks = 0;
    void* ctx = nullptr;
    detail::ChunkFn fn = nullptr;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> has_error{false};
    std::exception_ptr error;  // guarded by mu
    std::mutex mu;
    std::condition_variable cv;
};

/// Claims chunks until the range is exhausted. Safe to run on any number
/// of threads concurrently; each chunk is executed exactly once. The
/// body context is only dereferenced for successfully claimed chunks,
/// all of which complete before the issuing parallel_for returns.
void run_chunks(const std::shared_ptr<RegionState>& state) {
    RegionGuard guard;
    for (;;) {
        const std::size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
        if (c >= state->n_chunks) return;
        if (!state->has_error.load(std::memory_order_acquire)) {
            const std::size_t lo = state->begin + c * state->grain;
            const std::size_t hi = std::min(lo + state->grain, state->end);
            metrics::add(metrics::Counter::kParallelChunks);
            try {
                // One span per claimed task: the trace shows which worker
                // track ran which chunk of the region.
                trace::Span span("parallel_for.chunk");
                state->fn(state->ctx, lo, hi);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mu);
                if (!state->error) state->error = std::current_exception();
                state->has_error.store(true, std::memory_order_release);
            }
        }
        if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->n_chunks) {
            // Lock pairs with the caller's predicate check so the final
            // notify cannot slip between its test and its wait.
            std::lock_guard<std::mutex> lock(state->mu);
            state->cv.notify_all();
        }
    }
}

}  // namespace

namespace detail {

void parallel_for_erased(std::size_t begin, std::size_t end, std::size_t grain, void* ctx,
                         ChunkFn fn) {
    if (end <= begin) return;
    if (grain == 0) grain = 1;
    const std::size_t total = end - begin;
    const std::size_t n_chunks = (total + grain - 1) / grain;

    ThreadPool& pool = ThreadPool::global();
    if (n_chunks <= 1 || pool.parallelism() <= 1 || ThreadPool::in_parallel_region()) {
        // Serial fallback: same chunk decomposition, same order, and no
        // heap traffic in off/counters mode (the zero-allocation eval
        // path relies on this; counter adds are lock- and alloc-free).
        metrics::add(metrics::Counter::kParallelChunks, n_chunks);
        for (std::size_t c = 0; c < n_chunks; ++c) {
            const std::size_t lo = begin + c * grain;
            fn(ctx, lo, std::min(lo + grain, end));
        }
        return;
    }
    metrics::add(metrics::Counter::kParallelRegions);
    trace::Span region_span("parallel_for.region");

    auto state = std::make_shared<RegionState>();
    state->begin = begin;
    state->end = end;
    state->grain = grain;
    state->n_chunks = n_chunks;
    state->ctx = ctx;
    state->fn = fn;

    const std::size_t helpers = std::min(pool.worker_count(), n_chunks - 1);
    for (std::size_t i = 0; i < helpers; ++i) {
        pool.submit([state] { run_chunks(state); });
    }
    run_chunks(state);  // the caller is the Nth executor

    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&state] {
        return state->done.load(std::memory_order_acquire) == state->n_chunks;
    });
    if (state->error) std::rethrow_exception(state->error);
}

}  // namespace detail

std::size_t suggest_grain(std::size_t total, std::size_t min_chunk) {
    if (total == 0) return 1;
    const std::size_t p = ThreadPool::global().parallelism();
    if (p <= 1) return total;
    const std::size_t target_chunks = 4 * p;
    const std::size_t grain = (total + target_chunks - 1) / target_chunks;
    return std::max(grain, std::max<std::size_t>(min_chunk, 1));
}

}  // namespace ams::runtime
