// Scoped-span tracing: the "when" half of the observability layer
// (runtime/metrics.hpp is the "what happened" half).
//
// A Span is an RAII timestamp pair: construction records a begin time,
// destruction an end time, and the completed event lands in a buffer
// owned by the *recording thread* — no shared structure is touched on the
// hot path, so spans from the work-stealing pool's workers never contend.
// collect() merges every thread's buffer into one chronology; the chrome
// exporter renders it as a chrome://tracing / Perfetto-loadable JSON
// file with one track per thread (workers are labeled by the pool).
//
// Cost contract: spans are active only at AMSNET_TRACE=full. At off /
// counters a Span is a one-byte load and a branch — it never timestamps,
// never allocates (tests/trace_test.cpp holds the planned inference path
// to zero allocations with counters on). At full, a thread's first span
// allocates its buffer and each event may grow it: never trace inside
// allocation-counting tests.
//
// Numerics contract: tracing observes, it never participates. No span
// influences chunk decomposition, RNG stream selection, or any computed
// value, so enabling full tracing cannot perturb noise realizations
// (streams stay position-keyed; see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/metrics.hpp"

namespace ams::runtime::trace {

/// One completed span. `name` must be a string with static storage
/// duration (span sites pass literals); `tag` is a small inline buffer so
/// recording never allocates per event.
struct Event {
    static constexpr std::size_t kTagCapacity = 63;

    const char* name = nullptr;
    char tag[kTagCapacity + 1] = {0};  ///< optional "key=value ..." detail
    std::uint64_t start_ns = 0;        ///< relative to the process trace epoch
    std::uint64_t end_ns = 0;
    std::uint32_t thread_index = 0;    ///< stable per-thread track id
    std::uint32_t depth = 0;           ///< nesting level within the thread
};

/// RAII scoped span. Inert unless metrics::spans_enabled().
class Span {
public:
    explicit Span(const char* name) {
        if (metrics::spans_enabled()) begin(name, nullptr);
    }
    /// `tag` is copied (truncated to Event::kTagCapacity) into the event.
    Span(const char* name, const char* tag) {
        if (metrics::spans_enabled()) begin(name, tag);
    }
    ~Span() {
        if (active_) end();
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    void begin(const char* name, const char* tag);
    void end();

    bool active_ = false;
    Event event_{};
};

/// Labels the calling thread's track in the exported trace ("worker-3",
/// "main", ...). The pool labels its workers at startup; anything
/// unlabeled shows as "thread-<index>". Always active (one small
/// allocation per thread, at thread setup — never on a hot path) so
/// labels exist even when tracing is enabled later in the process.
void set_thread_label(const char* label);

/// Stable track index of the calling thread (assigned on first use).
[[nodiscard]] std::uint32_t thread_index();

/// Merges every thread's completed events into one list, ordered by
/// (thread_index, start_ns). Safe to call while other threads record —
/// events completing concurrently land in the next collect().
[[nodiscard]] std::vector<Event> collect();

/// Discards all buffered events (thread labels are kept).
void clear();

/// Renders events in the Chrome Trace Event JSON format (loadable by
/// chrome://tracing and Perfetto): one complete ("ph":"X") event per
/// span plus one metadata record naming each thread track.
void write_chrome_trace(std::ostream& os, const std::vector<Event>& events);

/// collect() + write to `path` (parent directories created). Returns the
/// number of events written. Throws std::runtime_error on I/O failure.
std::size_t write_chrome_trace_file(const std::string& path);

}  // namespace ams::runtime::trace
