#include "runtime/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

namespace ams::runtime::trace {

namespace {

using Clock = std::chrono::steady_clock;

/// All spans share one epoch so cross-thread timestamps are comparable.
Clock::time_point trace_epoch() {
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - trace_epoch())
            .count());
}

/// Per-thread recording state. Owned jointly by the recording thread
/// (thread_local shared_ptr) and the global registry, so buffers survive
/// thread exit until collect() drains them.
struct ThreadBuffer {
    std::mutex mu;  ///< guards events/label against a concurrent collect()
    std::vector<Event> events;
    std::string label;
    std::uint32_t index = 0;
    std::uint32_t depth = 0;  ///< only the owner thread touches this
};

struct Registry {
    std::mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
    static Registry* r = new Registry();  // leaked: threads may outlive main
    return *r;
}

ThreadBuffer& local_buffer() {
    thread_local std::shared_ptr<ThreadBuffer> buf = [] {
        auto b = std::make_shared<ThreadBuffer>();
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        b->index = static_cast<std::uint32_t>(reg.buffers.size());
        reg.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

void json_escape_into(std::ostream& os, const char* text) {
    for (const char* p = text; *p != '\0'; ++p) {
        const char c = *p;
        if (c == '"' || c == '\\') {
            os << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            os << ' ';  // control characters never appear in our names/tags
        } else {
            os << c;
        }
    }
}

}  // namespace

void Span::begin(const char* name, const char* tag) {
    ThreadBuffer& buf = local_buffer();
    event_.name = name;
    if (tag != nullptr) {
        std::strncpy(event_.tag, tag, Event::kTagCapacity);
        event_.tag[Event::kTagCapacity] = '\0';
    }
    event_.thread_index = buf.index;
    event_.depth = buf.depth++;
    event_.start_ns = now_ns();  // last: exclude setup from the span
    active_ = true;
}

void Span::end() {
    event_.end_ns = now_ns();
    ThreadBuffer& buf = local_buffer();
    buf.depth--;
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.events.push_back(event_);
}

void set_thread_label(const char* label) {
    ThreadBuffer& buf = local_buffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.label = label;
}

std::uint32_t thread_index() {
    return local_buffer().index;
}

std::vector<Event> collect() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        buffers = reg.buffers;
    }
    std::vector<Event> all;
    for (const auto& buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mu);
        all.insert(all.end(), buf->events.begin(), buf->events.end());
        buf->events.clear();
    }
    std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
        if (a.thread_index != b.thread_index) return a.thread_index < b.thread_index;
        if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
        return a.end_ns > b.end_ns;  // enclosing spans before their children
    });
    return all;
}

void clear() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        buffers = reg.buffers;
    }
    for (const auto& buf : buffers) {
        std::lock_guard<std::mutex> lock(buf->mu);
        buf->events.clear();
    }
}

void write_chrome_trace(std::ostream& os, const std::vector<Event>& events) {
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;

    // One metadata record per thread track, labeled if the thread said so.
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        buffers = reg.buffers;
    }
    for (const auto& buf : buffers) {
        std::string label;
        std::uint32_t index = 0;
        {
            std::lock_guard<std::mutex> lock(buf->mu);
            label = buf->label.empty() ? "thread-" + std::to_string(buf->index) : buf->label;
            index = buf->index;
        }
        if (!first) os << ",\n";
        first = false;
        os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << index
           << ", \"args\": {\"name\": \"";
        json_escape_into(os, label.c_str());
        os << "\"}}";
    }

    for (const Event& e : events) {
        if (!first) os << ",\n";
        first = false;
        // Chrome expects microsecond doubles; keep nanosecond precision.
        const double ts_us = static_cast<double>(e.start_ns) / 1e3;
        const double dur_us = static_cast<double>(e.end_ns - e.start_ns) / 1e3;
        os << "  {\"name\": \"";
        json_escape_into(os, e.name != nullptr ? e.name : "span");
        os << "\", \"cat\": \"amsnet\", \"ph\": \"X\", \"ts\": " << ts_us
           << ", \"dur\": " << dur_us << ", \"pid\": 1, \"tid\": " << e.thread_index;
        if (e.tag[0] != '\0') {
            os << ", \"args\": {\"tag\": \"";
            json_escape_into(os, e.tag);
            os << "\"}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

std::size_t write_chrome_trace_file(const std::string& path) {
    const std::vector<Event> events = collect();
    const std::filesystem::path p(path);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_chrome_trace_file: cannot open " + path);
    write_chrome_trace(out, events);
    if (!out) throw std::runtime_error("write_chrome_trace_file: write failed for " + path);
    return events.size();
}

}  // namespace ams::runtime::trace
