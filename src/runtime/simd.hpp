// SIMD dispatch layer: runtime CPU-feature selection between the scalar
// reference kernels and vectorized (AVX2/FMA) implementations.
//
// Every hot per-element loop in the library funnels through the
// primitives declared here (the GEMM microkernels live separately in
// tensor/gemm_kernels.hpp but share this dispatch). Contract:
//
//   * The *scalar* arm reproduces the pre-SIMD loops expression for
//     expression, so `AMSNET_SIMD=off` is bit-exact with the scalar-only
//     revisions of the library.
//   * The *AVX2* arm may differ in float realizations (FMA, reassociated
//     reductions, floor(x+0.5) rounding) — a one-time, documented change
//     (EXPERIMENTS.md "SIMD note"). Within one binary + one AMSNET_SIMD
//     setting, results are still bit-identical at any thread count:
//     every primitive computes each element independently of how the
//     index range is chunked.
//   * Dispatch is resolved once (env + cpuid) and cached; tests and
//     benches can flip arms explicitly with set_level().
//
// Environment: AMSNET_SIMD = off|scalar|0 forces the scalar arm,
// "avx2" requests the vector arm (silently falling back when the CPU
// lacks AVX2/FMA), anything else / unset auto-detects.
#pragma once

#include <cstddef>

namespace ams::simd {

enum class Level {
    kScalar,  ///< portable reference loops (always available)
    kAvx2,    ///< AVX2 + FMA vector kernels (x86-64 only)
};

/// The arm every dispatching kernel currently uses. First call resolves
/// AMSNET_SIMD + cpuid and caches the result; later calls are one
/// relaxed atomic load.
[[nodiscard]] Level active_level();

/// Overrides the active arm (tests / benches comparing both). A request
/// for kAvx2 on a CPU without AVX2/FMA is clamped to kScalar.
void set_level(Level level);

/// Re-runs the environment + cpuid resolution (what active_level() was
/// initialized with, ignoring any set_level override).
[[nodiscard]] Level detect_level();

/// True when the CPU (and this build) can run the AVX2/FMA arm.
[[nodiscard]] bool cpu_supports_avx2_fma();

[[nodiscard]] const char* level_name(Level level);

// ----- vectorized elementwise primitives -----
//
// All primitives allow in == out (in-place) and any n; unaligned
// pointers are fine. Each element depends only on its own input, so the
// result is independent of chunking or thread count.

/// out[i] = in[i] < 0 ? 0 : in[i]
void relu(const float* in, float* out, std::size_t n);

/// out[i] = clamp(in[i], 0, ceiling)
void clipped_relu(const float* in, float* out, std::size_t n, float ceiling);

/// out[i] = clamp(in[i], lo, hi)
void clamp(const float* in, float* out, std::size_t n, float lo, float hi);

/// out[i] = clamp(in[i] * scale, lo, hi)
void scale_clamp(const float* in, float* out, std::size_t n, float scale, float lo, float hi);

/// out[i] = gamma * (in[i] - mean) * inv_std + beta
/// (BatchNorm2d inference affine for one channel row.)
void bn_normalize(const float* in, float* out, std::size_t n, float mean, float inv_std,
                  float gamma, float beta);

/// out[i] = round(clamp(in[i], 0, 1) * levels) / levels
/// (DoReFa unit-interval fake-quant; scalar arm uses std::round, the
/// AVX2 arm floor(x + 0.5) — identical except on half-ulp edge cases.)
void quantize_unit(const float* in, float* out, std::size_t n, float levels);

/// out[i] = copysign(round(|in[i]| * levels) / levels, in[i])
/// (Sign-magnitude fake-quant used by QuantInput; same rounding note.)
void quantize_signed(const float* in, float* out, std::size_t n, float levels);

}  // namespace ams::simd
