// SIMD dispatch layer: runtime CPU-feature selection between the scalar
// reference kernels and vectorized (AVX2/FMA) implementations.
//
// Every hot per-element loop in the library funnels through the
// primitives declared here (the GEMM microkernels live separately in
// tensor/gemm_kernels.hpp but share this dispatch). Contract:
//
//   * The *scalar* arm reproduces the pre-SIMD loops expression for
//     expression, so `AMSNET_SIMD=off` is bit-exact with the scalar-only
//     revisions of the library.
//   * The *AVX2* arm may differ in float realizations (FMA, reassociated
//     reductions, floor(x+0.5) rounding) — a one-time, documented change
//     (EXPERIMENTS.md "SIMD note"). Within one binary + one AMSNET_SIMD
//     setting, results are still bit-identical at any thread count:
//     every primitive computes each element independently of how the
//     index range is chunked.
//   * Dispatch is resolved once (env + cpuid) and cached; tests and
//     benches can flip arms explicitly with set_level().
//
// Environment: AMSNET_SIMD = off|scalar|0 forces the scalar arm,
// "sse41" / "avx2" request a vector arm (silently clamped to the best
// level the CPU supports), anything else / unset auto-detects.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ams::simd {

enum class Level {
    kScalar,  ///< portable reference loops (always available)
    kSse41,   ///< SSSE3/SSE4.1 128-bit integer-GEMM kernels (x86-64)
    kAvx2,    ///< AVX2 + FMA vector kernels (x86-64 only)
};

/// True when `level` provides at least the capabilities of `floor`
/// (levels are ordered kScalar < kSse41 < kAvx2).
[[nodiscard]] constexpr bool level_at_least(Level level, Level floor) {
    return static_cast<int>(level) >= static_cast<int>(floor);
}

/// The arm every dispatching kernel currently uses. First call resolves
/// AMSNET_SIMD + cpuid and caches the result; later calls are one
/// relaxed atomic load.
[[nodiscard]] Level active_level();

/// Overrides the active arm (tests / benches comparing both). A request
/// above what the CPU supports is clamped to the best supported level
/// (kAvx2 -> kSse41 -> kScalar).
void set_level(Level level);

/// Re-runs the environment + cpuid resolution (what active_level() was
/// initialized with, ignoring any set_level override).
[[nodiscard]] Level detect_level();

/// True when the CPU (and this build) can run the AVX2/FMA arm.
[[nodiscard]] bool cpu_supports_avx2_fma();

/// True when the CPU (and this build) can run the SSSE3/SSE4.1 128-bit
/// integer kernels (implied by AVX2 support).
[[nodiscard]] bool cpu_supports_sse41();

[[nodiscard]] const char* level_name(Level level);

// ----- vectorized elementwise primitives -----
//
// All primitives allow in == out (in-place) and any n; unaligned
// pointers are fine. Each element depends only on its own input, so the
// result is independent of chunking or thread count.

/// out[i] = in[i] < 0 ? 0 : in[i]
void relu(const float* in, float* out, std::size_t n);

/// out[i] = clamp(in[i], 0, ceiling)
void clipped_relu(const float* in, float* out, std::size_t n, float ceiling);

/// out[i] = clamp(in[i], lo, hi)
void clamp(const float* in, float* out, std::size_t n, float lo, float hi);

/// out[i] = clamp(in[i] * scale, lo, hi)
void scale_clamp(const float* in, float* out, std::size_t n, float scale, float lo, float hi);

/// out[i] = gamma * (in[i] - mean) * inv_std + beta
/// (BatchNorm2d inference affine for one channel row.)
void bn_normalize(const float* in, float* out, std::size_t n, float mean, float inv_std,
                  float gamma, float beta);

/// out[i] = round(clamp(in[i], 0, 1) * levels) / levels
/// (DoReFa unit-interval fake-quant; scalar arm uses std::round, the
/// AVX2 arm floor(x + 0.5) — identical except on half-ulp edge cases.)
void quantize_unit(const float* in, float* out, std::size_t n, float levels);

/// out[i] = copysign(round(|in[i]| * levels) / levels, in[i])
/// (Sign-magnitude fake-quant used by QuantInput; same rounding note.)
void quantize_signed(const float* in, float* out, std::size_t n, float levels);

// ----- grid-code encoders (integer numeric domain) -----
//
// out[i] = narrow(clamp(lround(in[i] * levels), lo, hi)) with the
// integer range implied by the signature. Unlike quantize_unit, the
// AVX2 arm of these is bit-identical to the scalar arm on EVERY input
// (exact lround, realized as round-to-nearest-even plus a half-ulp tie
// fixup): the packed integer GEMM path promises cross-arm bit-identity,
// so its operand encoding cannot be allowed half-ulp drift.

/// Unsigned unit-grid codes, levels <= 255: clamp range [0, levels].
void encode_unit_u8(const float* in, std::uint8_t* out, std::size_t n, float levels);

/// Unsigned unit-grid codes, levels <= 32767: clamp range [0, levels].
void encode_unit_u16(const float* in, std::int16_t* out, std::size_t n, float levels);

/// Signed grid codes, levels <= 32767: clamp range [-levels, levels].
void encode_signed_i16(const float* in, std::int16_t* out, std::size_t n, float levels);

}  // namespace ams::simd
