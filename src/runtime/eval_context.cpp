#include "runtime/eval_context.hpp"

namespace ams::runtime {

EvalContext::EvalContext(std::uint64_t rng_seed, std::size_t initial_activation_bytes,
                         std::size_t initial_scratch_bytes)
    : activations_(initial_activation_bytes),
      scratch_(initial_scratch_bytes),
      rng_root_(rng_seed),
      pool_(&ThreadPool::global()) {}

float* EvalContext::reserve_scratch(const void* owner, int slot, std::size_t floats) {
    Entry& e = registry_[Key{owner, slot}];
    if (e.count < floats || e.data == nullptr) {
        e.data = scratch_.allocate_floats(floats);
        e.count = floats;
    }
    return e.data;
}

}  // namespace ams::runtime
