#include "runtime/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace ams::simd {

namespace detail {
// Implemented in simd_avx2.cpp (compiled with -mavx2 -mfma); only ever
// called behind a cpu_supports_avx2_fma() check.
void relu_avx2(const float* in, float* out, std::size_t n);
void clipped_relu_avx2(const float* in, float* out, std::size_t n, float ceiling);
void clamp_avx2(const float* in, float* out, std::size_t n, float lo, float hi);
void scale_clamp_avx2(const float* in, float* out, std::size_t n, float scale, float lo,
                      float hi);
void bn_normalize_avx2(const float* in, float* out, std::size_t n, float mean, float inv_std,
                       float gamma, float beta);
void quantize_unit_avx2(const float* in, float* out, std::size_t n, float levels);
void quantize_signed_avx2(const float* in, float* out, std::size_t n, float levels);
void encode_unit_u8_avx2(const float* in, std::uint8_t* out, std::size_t n, float levels);
void encode_unit_u16_avx2(const float* in, std::int16_t* out, std::size_t n, float levels);
void encode_signed_i16_avx2(const float* in, std::int16_t* out, std::size_t n, float levels);
}  // namespace detail

bool cpu_supports_avx2_fma() {
#if defined(AMSNET_HAVE_AVX2)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

bool cpu_supports_sse41() {
#if defined(AMSNET_HAVE_SSE41)
    return __builtin_cpu_supports("ssse3") && __builtin_cpu_supports("sse4.1");
#else
    return false;
#endif
}

namespace {
/// Best supported level not above `request`.
Level clamp_supported(Level request) {
    if (level_at_least(request, Level::kAvx2) && cpu_supports_avx2_fma()) return Level::kAvx2;
    if (level_at_least(request, Level::kSse41) && cpu_supports_sse41()) return Level::kSse41;
    return Level::kScalar;
}
}  // namespace

Level detect_level() {
    if (const char* env = std::getenv("AMSNET_SIMD"); env != nullptr && *env != '\0') {
        if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
            std::strcmp(env, "0") == 0) {
            return Level::kScalar;
        }
        if (std::strcmp(env, "sse41") == 0) return clamp_supported(Level::kSse41);
        if (std::strcmp(env, "avx2") == 0) return clamp_supported(Level::kAvx2);
        // Unrecognized value: fall through to auto-detection.
    }
    return clamp_supported(Level::kAvx2);
}

namespace {
std::atomic<Level>& level_slot() {
    static std::atomic<Level> level{detect_level()};
    return level;
}
}  // namespace

Level active_level() { return level_slot().load(std::memory_order_relaxed); }

void set_level(Level level) { level_slot().store(clamp_supported(level), std::memory_order_relaxed); }

const char* level_name(Level level) {
    switch (level) {
        case Level::kAvx2: return "avx2";
        case Level::kSse41: return "sse41";
        case Level::kScalar: break;
    }
    return "scalar";
}

// ----- scalar reference arms -----
//
// These loops are copied expression-for-expression from the pre-SIMD
// call sites; AMSNET_SIMD=off must stay bit-exact with those revisions.

void relu(const float* in, float* out, std::size_t n) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) return detail::relu_avx2(in, out, n);
#endif
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i] < 0.0f ? 0.0f : in[i];
}

void clipped_relu(const float* in, float* out, std::size_t n, float ceiling) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) return detail::clipped_relu_avx2(in, out, n, ceiling);
#endif
    for (std::size_t i = 0; i < n; ++i) {
        const float x = in[i];
        out[i] = x < 0.0f ? 0.0f : (x > ceiling ? ceiling : x);
    }
}

void clamp(const float* in, float* out, std::size_t n, float lo, float hi) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) return detail::clamp_avx2(in, out, n, lo, hi);
#endif
    for (std::size_t i = 0; i < n; ++i) out[i] = std::clamp(in[i], lo, hi);
}

void scale_clamp(const float* in, float* out, std::size_t n, float scale, float lo, float hi) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) {
        return detail::scale_clamp_avx2(in, out, n, scale, lo, hi);
    }
#endif
    for (std::size_t i = 0; i < n; ++i) out[i] = std::clamp(in[i] * scale, lo, hi);
}

void bn_normalize(const float* in, float* out, std::size_t n, float mean, float inv_std,
                  float gamma, float beta) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) {
        return detail::bn_normalize_avx2(in, out, n, mean, inv_std, gamma, beta);
    }
#endif
    for (std::size_t i = 0; i < n; ++i) out[i] = gamma * (in[i] - mean) * inv_std + beta;
}

void quantize_unit(const float* in, float* out, std::size_t n, float levels) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) return detail::quantize_unit_avx2(in, out, n, levels);
#endif
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = std::round(std::clamp(in[i], 0.0f, 1.0f) * levels) / levels;
    }
}

void quantize_signed(const float* in, float* out, std::size_t n, float levels) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) return detail::quantize_signed_avx2(in, out, n, levels);
#endif
    for (std::size_t i = 0; i < n; ++i) {
        const float mag = std::round(std::fabs(in[i]) * levels) / levels;
        out[i] = std::copysign(mag, in[i]);
    }
}

void encode_unit_u8(const float* in, std::uint8_t* out, std::size_t n, float levels) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) return detail::encode_unit_u8_avx2(in, out, n, levels);
#endif
    const long hi = static_cast<long>(levels);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(std::clamp(std::lround(in[i] * levels), 0L, hi));
    }
}

void encode_unit_u16(const float* in, std::int16_t* out, std::size_t n, float levels) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) return detail::encode_unit_u16_avx2(in, out, n, levels);
#endif
    const long hi = static_cast<long>(levels);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::int16_t>(std::clamp(std::lround(in[i] * levels), 0L, hi));
    }
}

void encode_signed_i16(const float* in, std::int16_t* out, std::size_t n, float levels) {
#if defined(AMSNET_HAVE_AVX2)
    if (active_level() == Level::kAvx2) {
        return detail::encode_signed_i16_avx2(in, out, n, levels);
    }
#endif
    const long hi = static_cast<long>(levels);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::int16_t>(std::clamp(std::lround(in[i] * levels), -hi, hi));
    }
}

}  // namespace ams::simd
