// Umbrella header: the full public API of amsnet.
//
// Most users only need this plus the README's quickstart. Individual
// headers remain includable for finer-grained builds.
#pragma once

// Parallel runtime (work-stealing pool, deterministic RNG streams)
#include "runtime/parallel_for.hpp"
#include "runtime/rng_stream.hpp"
#include "runtime/thread_pool.hpp"

// Tensors and utilities
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

// Neural network framework
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/sgd.hpp"

// DoReFa quantization and fixed point
#include "quant/dorefa.hpp"
#include "quant/fixed_point.hpp"
#include "quant/quant_modules.hpp"

// AMS error modeling (the paper's core)
#include "ams/delta_sigma.hpp"
#include "ams/error_injector.hpp"
#include "ams/error_model.hpp"
#include "ams/partitioned.hpp"
#include "ams/reference_scaling.hpp"
#include "ams/vmac_cell.hpp"
#include "ams/vmac_config.hpp"
#include "ams/vmac_conv.hpp"

// Energy modeling
#include "energy/adc_energy.hpp"
#include "energy/adc_survey.hpp"
#include "energy/energy_accuracy.hpp"
#include "energy/vmac_energy.hpp"

// Data, models, training, experiments
#include "core/experiment.hpp"
#include "core/network_energy.hpp"
#include "core/report.hpp"
#include "data/data_loader.hpp"
#include "data/synthetic_imagenet.hpp"
#include "models/blocks.hpp"
#include "models/conv_unit.hpp"
#include "models/resnet.hpp"
#include "train/checkpoint_cache.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"

// Serving (dynamic batching inference server + load generator)
#include "serve/load_gen.hpp"
#include "serve/server.hpp"
