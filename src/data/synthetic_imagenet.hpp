// SyntheticImageNet: a deterministic, procedurally generated image
// classification dataset.
//
// Stand-in for ImageNet-1k (see DESIGN.md, Substitutions): each class is a
// distinct procedural pattern family (stripes, rings, blobs, ...) with a
// class-conditional color profile, and every sample draws nuisance
// parameters (phase, frequency, position jitter, brightness, contrast,
// additive noise). The task is hard enough that aggressive quantization
// (6b/4b) visibly degrades accuracy while a small residual CNN trains to
// high accuracy in seconds per epoch on one CPU core — the regime the
// paper's experiments probe.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ams::data {

/// Dataset generation parameters.
struct DatasetOptions {
    std::size_t classes = 10;
    std::size_t train_per_class = 320;
    std::size_t val_per_class = 80;
    std::size_t image_size = 16;   ///< square images
    std::size_t channels = 3;
    float noise_sigma = 0.4f;      ///< per-pixel additive Gaussian noise
    std::uint64_t seed = 0x1337C0DEULL;

    /// Throws std::invalid_argument on degenerate values.
    void validate() const;
};

/// The generated dataset. Images are NCHW float tensors in roughly
/// [-1.5, 1.5] (unnormalized, like raw preprocessed ImageNet inputs), so
/// the first-layer rescaling step of the paper is actually exercised.
class SyntheticImageNet {
public:
    explicit SyntheticImageNet(const DatasetOptions& options);

    [[nodiscard]] const Tensor& train_images() const { return train_images_; }
    [[nodiscard]] const std::vector<std::size_t>& train_labels() const { return train_labels_; }
    [[nodiscard]] const Tensor& val_images() const { return val_images_; }
    [[nodiscard]] const std::vector<std::size_t>& val_labels() const { return val_labels_; }

    [[nodiscard]] const DatasetOptions& options() const { return options_; }

    /// Maximum |pixel| over the training set — the rescale factor for the
    /// first layer's input quantization (paper Sec. 2).
    [[nodiscard]] float max_abs_value() const { return max_abs_; }

private:
    DatasetOptions options_;
    Tensor train_images_;
    std::vector<std::size_t> train_labels_;
    Tensor val_images_;
    std::vector<std::size_t> val_labels_;
    float max_abs_ = 0.0f;
};

/// Renders a single sample of class `label` into `out` (C*H*W floats).
/// Exposed for tests and for streaming generation.
void render_sample(float* out, std::size_t label, const DatasetOptions& options, Rng& rng);

}  // namespace ams::data
