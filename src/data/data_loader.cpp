#include "data/data_loader.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace ams::data {

DataLoader::DataLoader(const Tensor& images, const std::vector<std::size_t>& labels,
                       std::size_t batch_size, Rng rng, bool shuffle)
    : images_(images),
      labels_(labels),
      batch_size_(batch_size),
      rng_(rng),
      shuffle_(shuffle) {
    if (images.rank() != 4) {
        throw std::invalid_argument("DataLoader: images must be NCHW");
    }
    if (images.dim(0) != labels.size()) {
        throw std::invalid_argument("DataLoader: image/label count mismatch");
    }
    if (batch_size == 0) throw std::invalid_argument("DataLoader: batch_size must be > 0");
    order_.resize(images.dim(0));
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    reshuffle();
}

std::size_t DataLoader::batches_per_epoch() const {
    return (order_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::reshuffle() {
    if (shuffle_) std::shuffle(order_.begin(), order_.end(), rng_);
}

Batch DataLoader::next() {
    if (cursor_ >= order_.size()) {
        cursor_ = 0;
        reshuffle();
    }
    const std::size_t count = std::min(batch_size_, order_.size() - cursor_);
    const std::size_t image =
        images_.dim(1) * images_.dim(2) * images_.dim(3);
    Batch batch{Tensor(Shape{count, images_.dim(1), images_.dim(2), images_.dim(3)}), {}};
    batch.labels.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t src = order_[cursor_ + i];
        std::memcpy(batch.images.data() + i * image, images_.data() + src * image,
                    image * sizeof(float));
        batch.labels.push_back(labels_[src]);
    }
    cursor_ += count;
    return batch;
}

}  // namespace ams::data
