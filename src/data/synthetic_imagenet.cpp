#include "data/synthetic_imagenet.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ams::data {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

/// Pattern families; a class uses family (label % kFamilies) with a color
/// profile derived from the full label. kFamilies is deliberately half the
/// default class count: classes come in pairs that share spatial structure
/// and differ mainly in per-channel gain/phase, so fine activation
/// precision carries class evidence — the regime where the paper's
/// quantization and AMS-noise effects appear.
constexpr std::size_t kFamilies = 5;

/// Spatial pattern intensity in [-1, 1] at normalized coordinates
/// (u, v) in [0, 1), for pattern family `fam`.
double pattern_value(std::size_t fam, double u, double v, double freq, double phase,
                     double jx, double jy) {
    const double x = u - 0.5 + jx;
    const double y = v - 0.5 + jy;
    switch (fam) {
        case 0:  // horizontal stripes
            return std::sin(kTau * freq * y + phase);
        case 1:  // vertical stripes
            return std::sin(kTau * freq * x + phase);
        case 2:  // diagonal stripes
            return std::sin(kTau * freq * (x + y) * 0.7071 + phase);
        case 3:  // checkerboard
            return std::sin(kTau * freq * x + phase) * std::sin(kTau * freq * y + phase);
        case 4: {  // rings
            const double r = std::sqrt(x * x + y * y);
            return std::sin(kTau * freq * r + phase);
        }
        case 5: {  // single gaussian blob
            const double d2 = x * x + y * y;
            return 2.0 * std::exp(-d2 * 8.0 * freq) - 1.0;
        }
        case 6:  // oriented gradient
            return std::tanh(3.0 * (x * std::cos(phase) + y * std::sin(phase)));
        case 7: {  // two blobs of opposite polarity
            const double dx1 = x - 0.2, dy1 = y - 0.2;
            const double dx2 = x + 0.2, dy2 = y + 0.2;
            return 2.0 * std::exp(-(dx1 * dx1 + dy1 * dy1) * 10.0 * freq) -
                   2.0 * std::exp(-(dx2 * dx2 + dy2 * dy2) * 10.0 * freq);
        }
        case 8: {  // cross (horizontal + vertical bar)
            const double bar = std::exp(-x * x * 30.0) + std::exp(-y * y * 30.0);
            return std::tanh(2.0 * bar - 1.0 + 0.3 * std::sin(phase));
        }
        default: {  // 9: radial segments
            const double theta = std::atan2(y, x);
            return std::sin(freq * theta + phase);
        }
    }
}

}  // namespace

void DatasetOptions::validate() const {
    if (classes < 2) throw std::invalid_argument("DatasetOptions: need >= 2 classes");
    if (classes > 2 * kFamilies) {
        throw std::invalid_argument(
            "DatasetOptions: at most " + std::to_string(2 * kFamilies) +
            " distinguishable classes (pattern families x 2 ratio members)");
    }
    if (train_per_class == 0 || val_per_class == 0) {
        throw std::invalid_argument("DatasetOptions: need samples per class");
    }
    if (image_size < 4) throw std::invalid_argument("DatasetOptions: image_size too small");
    if (channels == 0) throw std::invalid_argument("DatasetOptions: channels must be > 0");
    if (noise_sigma < 0.0f) throw std::invalid_argument("DatasetOptions: negative noise");
}

void render_sample(float* out, std::size_t label, const DatasetOptions& options, Rng& rng) {
    const std::size_t hw = options.image_size;
    const std::size_t fam = label % kFamilies;

    // Class-conditional color profile: deterministic in the label.
    // Spatial structure, signs, phases, and frequency are *family*
    // properties; classes within a family differ only in cross-channel
    // amplitude ratios. Because per-sample contrast jitter rescales all
    // channels together, absolute amplitude carries no class evidence —
    // the network must resolve relative channel amplitudes, which is
    // precisely what coarse activation quantization and AMS noise destroy.
    Rng family_rng(0xFA311ULL + 131ULL * fam);
    std::vector<double> chan_gain(options.channels);
    std::vector<double> chan_tilt(options.channels);
    std::vector<double> chan_phase(options.channels);
    const std::size_t member = label / kFamilies;
    for (std::size_t c = 0; c < options.channels; ++c) {
        const double sign = family_rng.uniform() < 0.3 ? -1.0 : 1.0;
        const double base = family_rng.uniform(0.5, 0.85);
        const double ratio = family_rng.uniform(1.5, 1.9);
        chan_gain[c] = sign * base;
        // Members tilt the channel ratio in opposite directions on
        // alternating channels — but only inside a small cue window (see
        // below), so the class evidence has low spatial redundancy.
        const bool up = ((c + member) % 2) == 0;
        chan_tilt[c] = up ? ratio : 1.0 / ratio;
    }
    for (std::size_t c = 0; c < options.channels; ++c) {
        chan_phase[c] = family_rng.uniform(0.0, kTau / 4.0);
    }
    const double base_freq = family_rng.uniform(1.2, 3.0);
    // Cue window: class-distinguishing gain tilts apply only within a
    // Gaussian window whose center jitters per sample. Outside it the two
    // classes of a family are identically distributed.
    const double cue_sigma = 0.16;

    // Per-sample nuisances. The wide ranges are what make the task hard
    // enough for precision loss to matter (see DESIGN.md).
    const double freq = base_freq * rng.uniform(0.85, 1.15);
    const double phase = rng.uniform(0.0, kTau);
    const double jx = rng.uniform(-0.18, 0.18);
    const double jy = rng.uniform(-0.18, 0.18);
    const double brightness = rng.uniform(-0.35, 0.35);
    const double contrast = rng.uniform(0.45, 1.25);

    // Distractor: a second, uncorrelated pattern family blended in at low
    // amplitude, so class evidence is never clean.
    const std::size_t distractor_fam = rng.uniform_index(kFamilies);
    const double distractor_gain = rng.uniform(0.15, 0.45);
    const double distractor_phase = rng.uniform(0.0, kTau);
    const double cue_cx = rng.uniform(-0.15, 0.15);
    const double cue_cy = rng.uniform(-0.15, 0.15);

    for (std::size_t c = 0; c < options.channels; ++c) {
        for (std::size_t y = 0; y < hw; ++y) {
            for (std::size_t x = 0; x < hw; ++x) {
                const double u = (static_cast<double>(x) + 0.5) / static_cast<double>(hw);
                const double v = (static_cast<double>(y) + 0.5) / static_cast<double>(hw);
                const double p =
                    pattern_value(fam, u, v, freq, phase + chan_phase[c], jx, jy);
                const double d = pattern_value(distractor_fam, u, v, freq * 1.3,
                                               distractor_phase, -jy, jx);
                const double wx = u - 0.5 - cue_cx;
                const double wy = v - 0.5 - cue_cy;
                const double window =
                    std::exp(-(wx * wx + wy * wy) / (2.0 * cue_sigma * cue_sigma));
                const double gain =
                    chan_gain[c] * std::exp(window * std::log(chan_tilt[c]));
                double value = contrast * (gain * p + distractor_gain * d) + brightness;
                value += rng.normal(0.0, options.noise_sigma);
                out[(c * hw + y) * hw + x] = static_cast<float>(value);
            }
        }
    }
}

SyntheticImageNet::SyntheticImageNet(const DatasetOptions& options) : options_(options) {
    options.validate();
    const std::size_t image = options.channels * options.image_size * options.image_size;
    const std::size_t n_train = options.classes * options.train_per_class;
    const std::size_t n_val = options.classes * options.val_per_class;

    train_images_ = Tensor(
        Shape{n_train, options.channels, options.image_size, options.image_size});
    val_images_ =
        Tensor(Shape{n_val, options.channels, options.image_size, options.image_size});
    train_labels_.reserve(n_train);
    val_labels_.reserve(n_val);

    Rng train_rng(options.seed);
    Rng val_rng(options.seed ^ 0xFEEDFACEULL);

    std::size_t idx = 0;
    for (std::size_t k = 0; k < options.classes; ++k) {
        for (std::size_t s = 0; s < options.train_per_class; ++s, ++idx) {
            render_sample(train_images_.data() + idx * image, k, options, train_rng);
            train_labels_.push_back(k);
        }
    }
    idx = 0;
    for (std::size_t k = 0; k < options.classes; ++k) {
        for (std::size_t s = 0; s < options.val_per_class; ++s, ++idx) {
            render_sample(val_images_.data() + idx * image, k, options, val_rng);
            val_labels_.push_back(k);
        }
    }
    max_abs_ = train_images_.abs_max();
}

}  // namespace ams::data
