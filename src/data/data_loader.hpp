// DataLoader: minibatch iteration with per-epoch shuffling.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace ams::data {

/// One minibatch: images {B, C, H, W} and labels of length B.
struct Batch {
    Tensor images;
    std::vector<std::size_t> labels;
};

/// Iterates a dataset (non-owning views are copied per batch) in shuffled
/// minibatches. The final partial batch of an epoch is emitted.
class DataLoader {
public:
    /// Keeps references to `images` / `labels`; they must outlive the
    /// loader. Throws std::invalid_argument on size mismatch or batch 0.
    DataLoader(const Tensor& images, const std::vector<std::size_t>& labels,
               std::size_t batch_size, Rng rng, bool shuffle = true);

    /// Number of batches per epoch.
    [[nodiscard]] std::size_t batches_per_epoch() const;

    /// Returns the next batch, reshuffling at each epoch boundary.
    [[nodiscard]] Batch next();

    /// True when the next call to next() starts a new epoch. (The epoch
    /// wrap is lazy: the cursor resets on the next next() call.)
    [[nodiscard]] bool at_epoch_start() const {
        return cursor_ == 0 || cursor_ >= order_.size();
    }

    [[nodiscard]] std::size_t dataset_size() const { return order_.size(); }

private:
    const Tensor& images_;
    const std::vector<std::size_t>& labels_;
    std::size_t batch_size_;
    Rng rng_;
    bool shuffle_;
    std::vector<std::size_t> order_;
    std::size_t cursor_ = 0;

    void reshuffle();
};

}  // namespace ams::data
